// Federation wiring: the core half of tiered collection. POST /merge folds
// a delta frame (internal/federation) into the served study through the
// same locked MergeShard path local ingestion uses, sequencing deltas per
// source so edge retries never double-count; Router.Union hosts a study
// that is the live union of named children; and every merged shard flows
// through shard observers — the tee that feeds an attached edge Pusher and
// union studies alike.
package service

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"tlsage/internal/federation"
	"tlsage/internal/notary"
)

// WithShardObserver registers fn to run after every shard that merges into
// the served study — record-stream flushes, queued merges and federated
// deltas alike. Observers run on the merging goroutine and receive the
// merged shard read-only; they must not retain or mutate it beyond
// Merge-style copying. Like Router.Add, observer registration is not safe
// concurrently with request serving.
func WithShardObserver(fn func(*notary.Aggregate)) Option {
	return func(s *Server) { s.shardObs = append(s.shardObs, fn) }
}

// WithPusher attaches an edge pusher: every shard merged into the study is
// teed into it, /healthz grows the federation edge block, and Close flushes
// and closes it after the ingest paths drain — so the final push covers
// everything the study accepted.
func WithPusher(p *federation.Pusher) Option {
	return func(s *Server) {
		s.pusher = p
		s.shardObs = append(s.shardObs, p.Observe)
	}
}

// addShardObserver appends an observer after construction (Router.Union
// uses it). Same contract as WithShardObserver: assemble before serving.
func (s *Server) addShardObserver(fn func(*notary.Aggregate)) {
	s.shardObs = append(s.shardObs, fn)
}

// noteShard runs the shard observers. The list is fixed once serving
// starts, so the iteration is lock-free.
func (s *Server) noteShard(shard *notary.Aggregate) {
	for _, fn := range s.shardObs {
		fn(shard)
	}
}

// fedState tracks the core side of federation on one server: a per-source
// applied-through cursor (the exactly-once dedup for POST /merge) and
// per-child union gauges.
type fedState struct {
	mu       sync.Mutex
	sources  map[string]*fedSource
	children map[string]*fedChild
	deltas   uint64 // deltas applied across all sources
	records  uint64 // records those deltas covered
	gaps     uint64 // deltas whose base jumped past the cursor
	lastGen  uint64 // study generation after the most recent federated merge
}

// fedSource sequences one pushing source. busy rejects a second concurrent
// push from the same source with 429: per-source deltas are ordered by
// base, so applying two at once could interleave cursor updates.
type fedSource struct {
	applied uint64 // generation applied through
	deltas  uint64
	records uint64
	busy    bool
}

// fedChild is one union member's contribution gauges.
type fedChild struct {
	shards  uint64
	records uint64
}

// fedDecision is the outcome of admitting one delta against the source
// cursor.
type fedDecision int

const (
	fedProceed   fedDecision = iota // new records; source marked busy, caller must complete()
	fedDuplicate                    // entirely covered by the cursor — idempotent ack
	fedConflict                     // overlaps the cursor — sender must rebase (409)
	fedBusy                         // a push from this source is already in flight (429)
)

// admit sequences one delta: everything at or below the applied-through
// cursor is a duplicate (an ack the sender lost — ack it again, apply
// nothing), a partial overlap is a conflict the sender must rebase around,
// and a clean continuation (or a gap, counted but accepted) proceeds with
// the source marked busy until complete.
func (f *fedState) admit(src string, base, recs uint64) (fedDecision, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sources == nil {
		f.sources = make(map[string]*fedSource)
	}
	fs := f.sources[src]
	if fs == nil {
		fs = &fedSource{}
		f.sources[src] = fs
	}
	switch {
	case fs.busy:
		return fedBusy, fs.applied
	case base+recs <= fs.applied:
		return fedDuplicate, fs.applied
	case base < fs.applied:
		return fedConflict, fs.applied
	}
	if base > fs.applied {
		f.gaps++
	}
	fs.busy = true
	return fedProceed, fs.applied
}

// complete releases the source after a proceed: on success the cursor
// advances to base+recs and the gauges tick, on failure everything is left
// as admitted so the sender can retry.
func (f *fedState) complete(src string, base, recs, gen uint64, ok bool) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := f.sources[src]
	fs.busy = false
	if !ok {
		return fs.applied
	}
	if through := base + recs; through > fs.applied {
		fs.applied = through
	}
	fs.deltas++
	fs.records += recs
	f.deltas++
	f.records += recs
	f.lastGen = gen
	return fs.applied
}

// registerChild pre-registers a union member so /healthz lists it before
// any traffic arrives.
func (f *fedState) registerChild(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.children == nil {
		f.children = make(map[string]*fedChild)
	}
	if f.children[id] == nil {
		f.children[id] = &fedChild{}
	}
}

// noteChild ticks one union member's gauges after its shard folded in.
func (f *fedState) noteChild(id string, recs, gen uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.children == nil {
		f.children = make(map[string]*fedChild)
	}
	c := f.children[id]
	if c == nil {
		c = &fedChild{}
		f.children[id] = c
	}
	c.shards++
	c.records += recs
	f.lastGen = gen
}

// health builds the /healthz federation core block, or nil when this server
// has neither federated sources nor union children.
func (f *fedState) health() map[string]any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.sources) == 0 && len(f.children) == 0 {
		return nil
	}
	out := map[string]any{
		"deltas_applied":        f.deltas,
		"records":               f.records,
		"gaps":                  f.gaps,
		"last_merge_generation": f.lastGen,
	}
	if len(f.sources) > 0 {
		srcs := make(map[string]any, len(f.sources))
		for name, fs := range f.sources {
			srcs[name] = map[string]any{
				"deltas":          fs.deltas,
				"records":         fs.records,
				"applied_through": fs.applied,
			}
		}
		out["sources"] = srcs
	}
	if len(f.children) > 0 {
		kids := make(map[string]any, len(f.children))
		for name, c := range f.children {
			kids[name] = map[string]any{"shards": c.shards, "records": c.records}
		}
		out["children"] = kids
	}
	return out
}

// federationEdgeHealth renders the pusher gauges for /healthz.
func federationEdgeHealth(st federation.PusherStats) map[string]any {
	age := -1.0 // nothing shipped yet
	if st.LastPushAge >= 0 {
		age = st.LastPushAge.Seconds()
	}
	return map[string]any{
		"source":                st.Source,
		"upstream":              st.Upstream,
		"deltas_shipped":        st.ShippedDeltas,
		"shipped_through":       st.ShippedThrough,
		"retained_records":      st.RetainedRecords,
		"retained_bytes":        st.RetainedBytes,
		"last_push_age_seconds": age,
		"upstream_errors":       st.UpstreamErrors,
		"last_error":            st.LastError,
	}
}

// handleMerge is POST /merge: decode one delta frame, sequence it against
// the source's cursor, and fold it through the study's locked merge path —
// the queue when one is configured, so federated ingest shares local
// ingestion's backpressure. Generation, frames, the query cache and
// /healthz all see it as ordinary ingest.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if !s.acquireStream() {
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("ingest saturated: %d streams in flight", s.maxInFlight))
		return
	}
	defer s.releaseStream()
	body := io.Reader(r.Body)
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	d, err := federation.ReadDelta(body)
	if err != nil {
		s.setGeneration(w)
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("decoding delta: %w", err))
		return
	}
	recs := d.Records()
	if recs > math.MaxUint64-d.Base {
		s.setGeneration(w)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("delta base %d + %d records overflows the generation space", d.Base, recs))
		return
	}
	ackGen := func() uint64 {
		_, _, gen, _ := s.study.Counts()
		return gen
	}
	if recs == 0 {
		// An empty delta is a no-op ping; ack the cursor without merging.
		_, applied := s.fed.admit(d.Source, 0, 0)
		gen := ackGen()
		w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
		writeJSON(w, http.StatusOK, federation.MergeAck{AppliedThrough: applied, Generation: gen})
		return
	}
	decision, applied := s.fed.admit(d.Source, d.Base, recs)
	switch decision {
	case fedBusy:
		s.setGeneration(w)
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		writeJSON(w, http.StatusTooManyRequests, federation.MergeAck{
			AppliedThrough: applied,
			Error:          fmt.Sprintf("a push from source %q is already in flight", d.Source),
		})
		return
	case fedDuplicate:
		// The whole delta is behind the cursor: an ack the sender lost.
		// Re-acking without applying keeps retries idempotent.
		gen := ackGen()
		w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
		writeJSON(w, http.StatusOK, federation.MergeAck{
			AppliedThrough: applied, Generation: gen, Duplicate: true,
		})
		return
	case fedConflict:
		// Part of the delta was already applied (a lost ack followed by more
		// accumulation). Applying would double-count the overlap; tell the
		// sender where to rebase from instead.
		s.setGeneration(w)
		writeJSON(w, http.StatusConflict, federation.MergeAck{
			AppliedThrough: applied,
			Error: fmt.Sprintf("delta for source %q starts at generation %d but %d is already applied; rebase past the cursor",
				d.Source, d.Base, applied),
		})
		return
	}
	// Proceed: fold through the same path local shards take.
	var mergeErr error
	if s.queue != nil {
		qs := &queueStream{}
		if mergeErr = s.queue.enqueue(qs, d.Agg); mergeErr == nil {
			mergeErr = qs.wait() // the merge loop runs onMerge + observers
		}
	} else {
		if mergeErr = s.study.MergeShard(d.Agg); mergeErr == nil {
			if s.snaps != nil {
				s.snaps.noteProgress()
			}
			s.noteShard(d.Agg)
		}
	}
	if mergeErr != nil {
		s.fed.complete(d.Source, d.Base, recs, 0, false)
		s.setGeneration(w)
		if errors.Is(mergeErr, errIngestBusy) {
			// Shed before anything applied: state unchanged, safe to retry.
			w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
			writeJSON(w, http.StatusTooManyRequests, federation.MergeAck{
				AppliedThrough: applied,
				Error:          mergeErr.Error(),
			})
			return
		}
		writeError(w, http.StatusInternalServerError, mergeErr)
		return
	}
	gen := ackGen()
	applied = s.fed.complete(d.Source, d.Base, recs, gen, true)
	w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	writeJSON(w, http.StatusOK, federation.MergeAck{
		Records: recs, AppliedThrough: applied, Generation: gen,
	})
}

// absorb folds one member study's merged shard into this (union) server's
// study and feeds this server's own observers — so a union can itself push
// upstream, making taller tiers compose.
func (s *Server) absorb(child string, shard *notary.Aggregate) {
	if err := s.study.MergeShard(shard); err != nil {
		// Only possible when the union study has no aggregate; Union mounts
		// live studies, so this is unreachable in assembled routers.
		return
	}
	if s.snaps != nil {
		s.snaps.noteProgress()
	}
	_, _, gen, _ := s.study.Counts()
	s.fed.noteChild(child, shard.Generation(), gen)
	s.noteShard(shard)
}

// Union mounts srv under id as a federated union study: every shard that
// merges into any member — record streams, queued merges, POST /merge
// deltas — is also folded into srv's study, so the whole query surface
// (/query, figures, fp:/agent: families, watch-ready generations) works
// unchanged over the union of the members. Aggregate.Merge is commutative
// and associative, so the union's content is byte-identical to one study
// ingesting every member's records itself, and its generation is the sum of
// the members'. Like Add, Union must run before serving starts.
func (rt *Router) Union(id string, srv *Server, members ...string) error {
	if len(members) == 0 {
		return fmt.Errorf("service: union study %q needs at least one member", id)
	}
	for _, m := range members {
		if _, ok := rt.servers[m]; !ok {
			return fmt.Errorf("service: union study %q: no member study %q", id, m)
		}
		if m == id {
			return fmt.Errorf("service: union study %q cannot be its own member", id)
		}
	}
	if err := rt.Add(id, srv); err != nil {
		return err
	}
	for _, m := range members {
		member := m
		srv.fed.registerChild(member)
		// Seed with the member's current content — studies recovered from
		// snapshots or pre-loaded before assembly are part of the union from
		// the start; the observer covers everything merged afterwards.
		if agg := rt.servers[member].study.Aggregate(); agg != nil && agg.Generation() > 0 {
			srv.absorb(member, agg)
		}
		rt.servers[member].addShardObserver(func(shard *notary.Aggregate) {
			srv.absorb(member, shard)
		})
	}
	return nil
}
