package service

import (
	"errors"
	"sync"
	"sync/atomic"

	"tlsage/internal/core"
	"tlsage/internal/notary"
)

// The bounded merge queue: the flow-control stage between stream readers and
// the live study. Without it, every connection handler merges its shards
// inline under the study's write lock — correct, but at heavy traffic the
// readers all stack up on that lock and the only backpressure is the
// in-flight stream cap. With a queue, readers parse and enqueue decoded
// shards; one merge loop owns the study write path; and a full queue sheds
// the offending stream with 429/busy instead of buffering without bound.
//
// Shedding is edge-triggered per shard, so a stream can be part-applied when
// its later shard finds the queue full. The server subtracts the doomed
// shard from the reported record count and the feed clients refuse to
// blind-retry a stream the server partially applied (see FeedHTTP/FeedTCP).

// DefaultQueueBound is the merge-queue capacity `tlstrend serve` uses unless
// -queue-bound says otherwise: at the default flush cadence it holds roughly
// a million records of parsed-but-unmerged backlog.
const DefaultQueueBound = 256

// errIngestBusy marks a stream shed because the bounded merge queue was
// saturated; the HTTP handler maps it to 429 + Retry-After and the TCP
// handler to a "busy" (or partial-stream "error:") status line.
var errIngestBusy = errors.New("service: ingest merge queue saturated")

// queuedShard is one parsed shard awaiting merge, tagged with the stream
// that produced it so completion (and any merge error) reaches the right
// handler.
type queuedShard struct {
	shard *notary.Aggregate
	st    *queueStream
}

// queueStream tracks one ingest stream's shards through the queue, so its
// handler can wait for everything it enqueued to merge before replying —
// the reply's record count and generation then mean the same thing they do
// on the inline-merge path.
type queueStream struct {
	wg       sync.WaitGroup
	enqueued int // shards handed to the queue (reader goroutine only)
	mu       sync.Mutex
	err      error
}

func (st *queueStream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// wait blocks until every shard the stream enqueued has merged and returns
// the first merge error, if any.
func (st *queueStream) wait() error {
	st.wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// mergeQueue is the bounded channel between connection readers and the
// single shard-merge loop.
type mergeQueue struct {
	study *core.Study
	ch    chan queuedShard
	wg    sync.WaitGroup
	// onMerge, when set, runs after every successful merge — the durability
	// checkpoint hook, same contract as shardIngester.onFlush.
	onMerge func()
	// onShard, when set, receives every successfully merged shard — the
	// federation tee (Server.noteShard as a method value).
	onShard func(*notary.Aggregate)
	// gate, when non-nil (tests only), is received from before each merge so
	// saturation tests can hold the loop deterministically.
	gate chan struct{}

	// closeMu serializes enqueue against close: handlers not tracked by
	// connWG (HTTP) may race Server.Close, and sending on a closed channel
	// would panic where "shed" is the correct answer.
	closeMu sync.RWMutex
	closed  bool

	enqueued atomic.Uint64
	merged   atomic.Uint64
	shedFull atomic.Uint64
}

func newMergeQueue(study *core.Study, bound int, onMerge func(), onShard func(*notary.Aggregate), gate chan struct{}) *mergeQueue {
	if bound <= 0 {
		bound = DefaultQueueBound
	}
	q := &mergeQueue{
		study:   study,
		ch:      make(chan queuedShard, bound),
		onMerge: onMerge,
		onShard: onShard,
		gate:    gate,
	}
	q.wg.Add(1)
	go q.loop()
	return q
}

// enqueue hands a shard to the merge loop without blocking: a full (or
// closed) queue sheds with errIngestBusy instead of buffering the reader.
func (q *mergeQueue) enqueue(st *queueStream, shard *notary.Aggregate) error {
	q.closeMu.RLock()
	defer q.closeMu.RUnlock()
	if q.closed {
		q.shedFull.Add(1)
		return errIngestBusy
	}
	st.wg.Add(1)
	select {
	case q.ch <- queuedShard{shard: shard, st: st}:
		st.enqueued++
		q.enqueued.Add(1)
		return nil
	default:
		st.wg.Done()
		q.shedFull.Add(1)
		return errIngestBusy
	}
}

func (q *mergeQueue) loop() {
	defer q.wg.Done()
	for qs := range q.ch {
		if q.gate != nil {
			<-q.gate
		}
		if err := q.study.MergeShard(qs.shard); err != nil {
			qs.st.fail(err)
		} else {
			if q.onMerge != nil {
				q.onMerge()
			}
			if q.onShard != nil {
				q.onShard(qs.shard)
			}
		}
		q.merged.Add(1)
		qs.st.wg.Done()
	}
}

// close drains the queue: no further enqueues are accepted (they shed), and
// it returns only after every already-queued shard has merged.
func (q *mergeQueue) close() {
	q.closeMu.Lock()
	if q.closed {
		q.closeMu.Unlock()
		return
	}
	q.closed = true
	q.closeMu.Unlock()
	close(q.ch)
	q.wg.Wait()
}

// stats reports the /healthz ingest-queue gauges: instantaneous depth,
// capacity, lag (enqueued minus merged — what a consumer is behind by) and
// lifetime batch/shed counters.
func (q *mergeQueue) stats() map[string]any {
	enq, mrg := q.enqueued.Load(), q.merged.Load()
	return map[string]any{
		"capacity":         cap(q.ch),
		"depth":            len(q.ch),
		"lag":              enq - mrg,
		"batches_enqueued": enq,
		"batches_merged":   mrg,
		"shed_full":        q.shedFull.Load(),
	}
}
