package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"

	"tlsage/internal/analysis"
	"tlsage/internal/core"
)

// postQuery sends one expression to a /query endpoint and decodes the reply.
func postQuery(t *testing.T, url, expr string) (analysis.QueryResult, *http.Response) {
	t.Helper()
	body, err := json.Marshal(map[string]string{"query": expr})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s %q: %d: %s", url, expr, resp.StatusCode, raw)
	}
	var res analysis.QueryResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding query result: %v\n%s", err, raw)
	}
	return res, resp
}

// TestRouterTwoStudyQueryParity is the e2e acceptance check for the query
// surface: on a two-study router, POST /studies/{id}/query returns exactly
// the series computed by offline evaluation of the same expression against
// each study's own data — and the legacy root routes keep answering for the
// default study.
func TestRouterTwoStudyQueryParity(t *testing.T) {
	log, offline := sharedLog(t)

	rt := NewRouter()
	alpha := NewServer(core.NewLiveStudy(), WithFlushEvery(61))
	beta := NewServer(core.NewLiveStudy(), WithFlushEvery(89))
	if err := rt.Add("alpha", alpha); err != nil {
		t.Fatal(err)
	}
	if err := rt.Add("beta", beta); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Feed the whole log to alpha and only the first half of its lines to
	// beta, so the two vantage points hold genuinely different aggregates.
	lines := bytes.SplitAfter(log, []byte{'\n'})
	var betaLog bytes.Buffer
	for i, l := range lines {
		if i%2 == 0 {
			betaLog.Write(l)
		}
	}
	for _, feed := range []struct {
		path string
		body []byte
	}{
		{"/studies/alpha/ingest", log},
		{"/studies/beta/ingest", betaLog.Bytes()},
	} {
		resp, err := http.Post(ts.URL+feed.path, "text/tab-separated-values", bytes.NewReader(feed.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", feed.path, resp.StatusCode)
		}
	}

	// Offline references: the same records through the offline path.
	betaOffline := &core.Study{}
	if err := betaOffline.LoadLog(bytes.NewReader(betaLog.Bytes())); err != nil {
		t.Fatal(err)
	}

	const expr = "pct(sum(kex:ecdhe, kex:tls13) / established)"
	for _, c := range []struct {
		id      string
		offline *core.Study
	}{
		{"alpha", offline},
		{"beta", betaOffline},
	} {
		want, err := c.offline.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := postQuery(t, ts.URL+"/studies/"+c.id+"/query", expr)
		if got.Kind != "series" || got.Query != want.Query {
			t.Fatalf("%s: result header %q/%q, want %q/series", c.id, got.Query, got.Kind, want.Query)
		}
		if !reflect.DeepEqual(got.Series.Points, want.Series.Points) {
			t.Errorf("%s: served query diverges from offline evaluation", c.id)
		}
	}

	// The two studies really answer differently (different record sets).
	a, _ := postQuery(t, ts.URL+"/studies/alpha/query", "count(total)")
	bq, _ := postQuery(t, ts.URL+"/studies/beta/query", "count(total)")
	if a.Value == bq.Value {
		t.Errorf("alpha and beta report the same record count %v", a.Value)
	}
	if want := float64(offline.Aggregate().TotalRecords()); a.Value != want {
		t.Errorf("alpha count(total) = %v, want %v", a.Value, want)
	}

	// Legacy root routes alias the default (first-added) study.
	rootRes, _ := postQuery(t, ts.URL+"/query", "count(total)")
	if rootRes.Value != a.Value {
		t.Errorf("root /query answered %v, default study holds %v", rootRes.Value, a.Value)
	}
	rootFig := mustGet(t, ts.URL+"/figure/versions")
	aliasFig := mustGet(t, ts.URL+"/studies/alpha/figure/versions")
	if !bytes.Equal(rootFig, aliasFig) {
		t.Error("root /figure/versions diverges from /studies/alpha/figure/versions")
	}

	// The listing reports both studies with live counts.
	var listing []struct {
		ID      string `json:"id"`
		Default bool   `json:"default"`
		Records int    `json:"records"`
	}
	if err := json.Unmarshal(mustGet(t, ts.URL+"/studies"), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 2 || listing[0].ID != "alpha" || !listing[0].Default ||
		listing[1].ID != "beta" || listing[1].Default {
		t.Fatalf("listing = %+v", listing)
	}
	if listing[0].Records != offline.Aggregate().TotalRecords() ||
		listing[1].Records != betaOffline.Aggregate().TotalRecords() {
		t.Errorf("listing counts = %+v", listing)
	}

	// A wrong-method hit on an existing study root gets a 405 pointing at
	// the nested API — not a bogus "no study" 404.
	resp405, err := http.Post(ts.URL+"/studies/alpha", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp405.Body)
	resp405.Body.Close()
	if resp405.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /studies/alpha: status %d, want 405", resp405.StatusCode)
	}

	// Unknown study ids 404 with the valid ids in the body.
	resp, err := http.Get(ts.URL + "/studies/gamma/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var miss struct {
		Error string   `json:"error"`
		Valid []string `json:"valid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&miss); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || len(miss.Valid) != 2 {
		t.Errorf("unknown study: status %d, body %+v", resp.StatusCode, miss)
	}
}

// TestQueryEndpointShapes pins the query endpoint's scalar results, Expr
// JSON bodies and error paths on a single server.
func TestQueryEndpointShapes(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Scalar via the text grammar.
	res, httpResp := postQuery(t, ts.URL+"/query", "count(total)")
	if want := float64(offline.Aggregate().TotalRecords()); res.Kind != "scalar" || res.Value != want {
		t.Errorf("count(total) = %+v, want scalar %v", res, want)
	}
	wantGen := strconv.Itoa(offline.Aggregate().TotalRecords())
	if got := httpResp.Header.Get("X-Generation"); got != wantGen {
		t.Errorf("X-Generation = %q, want %q", got, wantGen)
	}

	// The same expression as an Expr JSON body evaluates identically.
	expr, err := analysis.ParseQuery("count(total)")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"expr": expr})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var exprRes analysis.QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&exprRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if exprRes.Value != res.Value {
		t.Errorf("expr body answered %v, text body %v", exprRes.Value, res.Value)
	}

	// Malformed expressions are a 400 with the parse error.
	bad, err := json.Marshal(map[string]string{"query": "pct(no-such-col / total)"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", resp.StatusCode)
	}
}

// TestGenerationHeaderAndFigureMiss pins the two polish satellites: every
// JSON endpoint stamps X-Generation, and a figure-name miss is a 404 whose
// body lists the valid catalog names (with case-insensitive hits).
func TestGenerationHeaderAndFigureMiss(t *testing.T) {
	log, offline := sharedLog(t)
	srv := NewServer(core.NewLiveStudy())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/tab-separated-values", bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Generation"); got == "" || got == "0" {
		t.Errorf("ingest X-Generation = %q", got)
	}

	wantGen := strconv.Itoa(offline.Aggregate().TotalRecords())
	for _, path := range []string{"/figures", "/figure/versions", "/scalars", "/metrics", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Generation"); got != wantGen {
			t.Errorf("%s: X-Generation = %q, want %q", path, got, wantGen)
		}
	}

	// Case-insensitive name hit.
	if !bytes.Equal(mustGet(t, ts.URL+"/figure/VERSIONS"), mustGet(t, ts.URL+"/figure/versions")) {
		t.Error("figure lookup is case-sensitive")
	}

	// Miss: 404 + valid-name list.
	resp, err = http.Get(ts.URL + "/figure/nope")
	if err != nil {
		t.Fatal(err)
	}
	var miss struct {
		Error string   `json:"error"`
		Valid []string `json:"valid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&miss); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("figure miss status %d", resp.StatusCode)
	}
	if !reflect.DeepEqual(miss.Valid, analysis.CatalogNames()) || miss.Error == "" {
		t.Errorf("figure miss body = %+v, want the catalog names", miss)
	}
}
