// Durability: crash-safe snapshots of the live aggregate plus restart
// recovery. The snapshot codec (internal/notary) gives the aggregate a
// versioned, checksummed on-disk form; this file adds the operational half —
// atomic writes (tmp + fsync + rename), periodic snapshotting, retention,
// and startup recovery that loads the newest intact snapshot and replays
// only the TSV log tail past its record count. A notary that loses its
// aggregate on restart breaks the paper's multi-year collection; with this
// in place a crash costs at most the records since the last snapshot that
// also missed the durable log.
package service

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlsage/internal/core"
	"tlsage/internal/notary"
)

// snapshot file naming: snap-<generation, zero-padded>.tlsnap, so lexical
// and numeric order agree and the newest snapshot is the last name.
const (
	snapshotPrefix = "snap-"
	snapshotSuffix = ".tlsnap"
	snapshotTmpPat = "snap-*.tmp"
)

// DefaultSnapshotKeep is the retention depth when DurabilityOptions.Keep is
// unset: the newest snapshot plus two fallbacks for torn/corrupt recovery.
const DefaultSnapshotKeep = 3

// DurabilityOptions configures the snapshot manager attached with
// WithDurability.
type DurabilityOptions struct {
	// Dir is the snapshot directory (created if missing). Empty disables
	// durability.
	Dir string
	// EveryRecords snapshots after this many new records reach the
	// aggregate, checked at ingest flush boundaries. 0 disables the
	// record-count trigger.
	EveryRecords uint64
	// Interval snapshots on a timer whenever the generation has moved.
	// 0 disables the timer.
	Interval time.Duration
	// Keep is how many snapshots to retain (older ones are pruned after
	// each successful write). <= 0 means DefaultSnapshotKeep.
	Keep int
	// Logf receives recovery and snapshot-failure warnings; nil means
	// log.Printf.
	Logf func(format string, args ...any)
}

func (o *DurabilityOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (o *DurabilityOptions) keep() int {
	if o.Keep <= 0 {
		return DefaultSnapshotKeep
	}
	return o.Keep
}

// snapshotName returns the file name for a snapshot at gen.
func snapshotName(gen uint64) string {
	return fmt.Sprintf("%s%020d%s", snapshotPrefix, gen, snapshotSuffix)
}

// parseSnapshotName extracts the generation from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(snapshotPrefix):len(name)-len(snapshotSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// listSnapshots returns the snapshot files in dir, newest (highest
// generation) first. A missing directory yields an empty list.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	type snap struct {
		gen  uint64
		name string
	}
	var snaps []snap
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseSnapshotName(e.Name()); ok {
			snaps = append(snaps, snap{gen, e.Name()})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].gen > snaps[j].gen })
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = filepath.Join(dir, s.name)
	}
	return out, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// WriteStudySnapshot atomically writes one snapshot of the study into dir:
// encode to a temp file, fsync, rename into place, fsync the directory, then
// prune snapshots beyond keep (<= 0 means DefaultSnapshotKeep). A reader can
// never observe a torn file under the final name. It returns the snapshot
// path and the generation it captured.
func WriteStudySnapshot(dir string, study *core.Study, keep int) (string, uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	tmp, err := os.CreateTemp(dir, snapshotTmpPat)
	if err != nil {
		return "", 0, err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, uint64, error) {
		tmp.Close()
		os.Remove(tmpName)
		return "", 0, err
	}
	gen, err := study.WriteSnapshot(tmp)
	if err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", 0, err
	}
	final := filepath.Join(dir, snapshotName(gen))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", 0, err
	}
	syncDir(dir)
	if keep <= 0 {
		keep = DefaultSnapshotKeep
	}
	if snaps, err := listSnapshots(dir); err == nil {
		for _, old := range snaps[min(keep, len(snaps)):] {
			_ = os.Remove(old)
		}
	}
	return final, gen, nil
}

// RecoveryInfo reports what RecoverStudy reconstructed.
type RecoveryInfo struct {
	// SnapshotPath is the snapshot that loaded cleanly ("" when recovery
	// fell back to a full log replay or an empty study).
	SnapshotPath string
	// SnapshotRecords is the record count the snapshot covered.
	SnapshotRecords uint64
	// ReplayedRecords counts log-tail records applied on top.
	ReplayedRecords uint64
	// LogBase is the generation the log's first #base directive declares it
	// was truncated at (0 when the log starts at generation zero). A base
	// above SnapshotRecords means generations SnapshotRecords+1..LogBase are
	// in neither source.
	LogBase uint64
	// TornLine is the 1-based log line replay stopped at because it was
	// malformed (0 = the whole log parsed). Everything from this line on is
	// not reflected in the recovered study.
	TornLine int
	// CorruptSnapshots counts snapshot files skipped for failing their
	// checksum or decode (torn writes, flipped bits).
	CorruptSnapshots int
	// LogTruncated reports that the log ended in a torn line (the usual
	// signature of a crash mid-write); the valid prefix was kept.
	LogTruncated bool
}

// Records is the total record count recovered.
func (ri RecoveryInfo) Records() uint64 { return ri.SnapshotRecords + ri.ReplayedRecords }

// RecoverStudy rebuilds a live study after a restart: it loads the newest
// snapshot in dir that passes its checksum — torn or corrupted files are
// skipped with a logged warning, never a crash — then replays only the TSV
// log tail past the snapshot's record count. Either source may be absent: no
// usable snapshot degrades to a full log replay, no log to the bare
// snapshot, neither to an empty study. A torn final log line (crash
// mid-write) is dropped with a warning and the valid prefix kept; leftover
// .tmp files from interrupted snapshot writes are removed.
func RecoverStudy(dir, logPath string, logf func(format string, args ...any)) (*core.Study, RecoveryInfo, error) {
	if logf == nil {
		logf = log.Printf
	}
	var info RecoveryInfo
	var agg *notary.Aggregate
	if dir != "" {
		snaps, err := listSnapshots(dir)
		if err != nil {
			return nil, info, fmt.Errorf("service: listing snapshots in %s: %w", dir, err)
		}
		for _, path := range snaps {
			a, err := readSnapshotFile(path)
			if err != nil {
				info.CorruptSnapshots++
				logf("service: skipping unusable snapshot %s: %v", path, err)
				continue
			}
			agg = a
			info.SnapshotPath = path
			info.SnapshotRecords = a.Generation()
			break
		}
		// Interrupted snapshot writes leave temp files behind; they were
		// never visible to recovery, so clear them out.
		if tmps, err := filepath.Glob(filepath.Join(dir, snapshotTmpPat)); err == nil {
			for _, t := range tmps {
				_ = os.Remove(t)
			}
		}
	}
	var study *core.Study
	if agg != nil {
		study = core.NewStudyFromAggregate(agg)
	} else {
		study = core.NewLiveStudy()
	}
	if logPath != "" {
		f, err := os.Open(logPath)
		if errors.Is(err, fs.ErrNotExist) {
			return study, info, nil
		}
		if err != nil {
			return nil, info, err
		}
		defer f.Close()
		n, base, err := notary.ReadLogTail(f, info.SnapshotRecords, study.IngestSink())
		info.ReplayedRecords = n
		info.LogBase = base
		if err != nil {
			var le *notary.LineError
			if !errors.As(err, &le) {
				return nil, info, fmt.Errorf("service: replaying %s: %w", logPath, err)
			}
			info.LogTruncated = true
			info.TornLine = le.Line
			logf("service: log %s: dropping torn tail from line %d (%v); %d replayed records kept",
				logPath, le.Line, le.Err, n)
		}
		if base > info.SnapshotRecords {
			logf("service: log %s resumes at generation %d but the best snapshot covers %d; records %d..%d are unrecoverable",
				logPath, base, info.SnapshotRecords, info.SnapshotRecords+1, base)
		}
	}
	return study, info, nil
}

// OpenIngestLog opens the serve -out log for writing, consistently with the
// state RecoverStudy just rebuilt (gen is the recovered study's generation,
// tornLine the RecoveryInfo.TornLine it reported).
//
// With durable snapshots the recovered state was compacted into a fresh
// snapshot, so the log is truncated and restarted with a #base directive
// recording the generation it resumes at — the next recovery aligns the
// snapshot's record count against base instead of assuming the log starts
// at generation zero. Without snapshots the log is the only durable copy of
// everything recovery just replayed, so truncating it would demote durable
// records to memory-only; instead the torn tail (if any) is trimmed off and
// the log is opened in append mode.
func OpenIngestLog(path string, gen uint64, durableSnapshots bool, tornLine int) (*os.File, error) {
	if !durableSnapshots && gen > 0 {
		if tornLine > 0 {
			if err := trimLogAt(path, tornLine); err != nil {
				return nil, fmt.Errorf("service: trimming torn tail of %s: %w", path, err)
			}
		}
		return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if gen > 0 {
		if _, err := f.WriteString(notary.LogBaseDirective(gen)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// trimLogAt truncates the log file to the byte offset where its 1-based
// line begins, dropping that line and everything after it. Appending fresh
// records after a torn line would fuse them into one malformed line and
// poison the next replay; after the trim the file holds exactly the records
// recovery kept.
func trimLogAt(path string, line int) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var off int64
	buf := make([]byte, 1<<16)
	remaining := line - 1 // complete lines to keep
	for remaining > 0 {
		n, err := f.Read(buf)
		for i := 0; i < n && remaining > 0; i++ {
			off++
			if buf[i] == '\n' {
				remaining--
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
	}
	return f.Truncate(off)
}

// readSnapshotFile decodes one snapshot file.
func readSnapshotFile(path string) (*notary.Aggregate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return notary.ReadSnapshot(f)
}

// snapshotManager drives periodic snapshots of a served study: a
// record-count trigger checked synchronously at ingest flush boundaries, an
// optional wall-clock ticker, and a final snapshot on Close (the SIGTERM
// path). Writes are serialized; the flush-boundary check uses TryLock so
// ingest streams never queue behind an in-progress snapshot.
type snapshotManager struct {
	study *core.Study
	opts  DurabilityOptions

	mu      sync.Mutex    // serializes snapshot writes
	lastGen atomic.Uint64 // generation of the newest on-disk snapshot
	lastAt  atomic.Int64  // unix nanos of the last successful write (0 = none this process)
	written atomic.Uint64 // successful writes this process
	errs    atomic.Uint64 // failed writes this process

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newSnapshotManager(study *core.Study, opts DurabilityOptions) *snapshotManager {
	m := &snapshotManager{
		study: study,
		opts:  opts,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	// Seed the record-count trigger from what is already durable, so a
	// recovered-and-recompacted study does not immediately re-snapshot.
	if snaps, err := listSnapshots(opts.Dir); err == nil && len(snaps) > 0 {
		if gen, ok := parseSnapshotName(filepath.Base(snaps[0])); ok {
			m.lastGen.Store(gen)
		}
	}
	go m.run()
	return m
}

// run is the timer loop; the record-count trigger arrives via noteProgress
// on the ingest goroutines instead.
func (m *snapshotManager) run() {
	defer close(m.done)
	if m.opts.Interval <= 0 {
		<-m.stop
		return
	}
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.mu.Lock()
			m.snapshotLocked()
			m.mu.Unlock()
		}
	}
}

// noteProgress is the flush-boundary hook: snapshot if EveryRecords new
// records have accrued since the last snapshot. Contention is shed rather
// than queued — if another snapshot is in flight this flush simply skips,
// and a later flush re-checks.
func (m *snapshotManager) noteProgress() {
	every := m.opts.EveryRecords
	if every == 0 {
		return
	}
	_, _, gen, err := m.study.Counts()
	if err != nil || gen-m.lastGen.Load() < every {
		return
	}
	if !m.mu.TryLock() {
		return
	}
	defer m.mu.Unlock()
	if gen-m.lastGen.Load() < every { // re-check under the lock
		return
	}
	m.snapshotLocked()
}

// snapshotLocked writes one snapshot if the generation moved since the last
// one. Callers hold m.mu.
func (m *snapshotManager) snapshotLocked() {
	_, _, gen, err := m.study.Counts()
	if err != nil || gen == m.lastGen.Load() {
		return
	}
	if _, gen, err = WriteStudySnapshot(m.opts.Dir, m.study, m.opts.keep()); err != nil {
		m.errs.Add(1)
		m.opts.logf("service: snapshot failed: %v", err)
		return
	}
	m.lastGen.Store(gen)
	m.lastAt.Store(time.Now().UnixNano())
	m.written.Add(1)
}

// close stops the timer loop and writes a final snapshot — the SIGTERM
// half of durability: a drained server's last records are on disk before
// the process exits.
func (m *snapshotManager) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.mu.Lock()
	m.snapshotLocked()
	m.mu.Unlock()
}

// status reports the healthz gauges: the generation of the newest durable
// snapshot, its age (negative when no snapshot has been written by this
// process yet), and the write/error counters.
func (m *snapshotManager) status() (gen uint64, age time.Duration, written, errs uint64) {
	age = -1
	if at := m.lastAt.Load(); at > 0 {
		age = time.Since(time.Unix(0, at))
	}
	return m.lastGen.Load(), age, m.written.Load(), m.errs.Load()
}
