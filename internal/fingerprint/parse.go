package fingerprint

import (
	"fmt"
	"strconv"
	"strings"

	"tlsage/internal/registry"
)

// Parse inverts FromParts: it splits a canonical fingerprint string back
// into the four Client Hello feature lists. Round trip holds both ways —
// FromParts(Parse(fp)) == fp for every fingerprint FromParts can emit
// (the canonical form is already GREASE-stripped, so stripping again is a
// no-op) — and arbitrary input yields an error, never a panic.
func Parse(s string) (suites []uint16, exts []registry.ExtensionID, curves []registry.CurveID, pfs []registry.ECPointFormat, err error) {
	sections := strings.Split(s, "|")
	if len(sections) != 4 {
		return nil, nil, nil, nil, fmt.Errorf("fingerprint: %d sections, want 4", len(sections))
	}
	suites, err = parseHexList(sections[0], "cs:")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var u []uint16
	if u, err = parseHexList(sections[1], "ext:"); err != nil {
		return nil, nil, nil, nil, err
	}
	exts = make([]registry.ExtensionID, len(u))
	for i, v := range u {
		exts[i] = registry.ExtensionID(v)
	}
	if u, err = parseHexList(sections[2], "grp:"); err != nil {
		return nil, nil, nil, nil, err
	}
	curves = make([]registry.CurveID, len(u))
	for i, v := range u {
		curves[i] = registry.CurveID(v)
	}
	if u, err = parseHexList(sections[3], "pf:"); err != nil {
		return nil, nil, nil, nil, err
	}
	pfs = make([]registry.ECPointFormat, len(u))
	for i, v := range u {
		if v > 0xff {
			return nil, nil, nil, nil, fmt.Errorf("fingerprint: point format %04x exceeds a byte", v)
		}
		pfs[i] = registry.ECPointFormat(v)
	}
	return suites, exts, curves, pfs, nil
}

// parseHexList decodes one "tag:xxxx,xxxx,..." section. An empty list after
// the tag is valid (FromParts emits nothing between tag and separator).
func parseHexList(section, tag string) ([]uint16, error) {
	rest, ok := strings.CutPrefix(section, tag)
	if !ok {
		return nil, fmt.Errorf("fingerprint: section %q does not start with %q", section, tag)
	}
	if rest == "" {
		return nil, nil
	}
	parts := strings.Split(rest, ",")
	out := make([]uint16, len(parts))
	for i, p := range parts {
		// Canonical fingerprints print %04x — fixed-width lowercase hex.
		if len(p) != 4 || p != strings.ToLower(p) {
			return nil, fmt.Errorf("fingerprint: malformed code point %q in %s section", p, tag)
		}
		v, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return nil, fmt.Errorf("fingerprint: malformed code point %q in %s section", p, tag)
		}
		out[i] = uint16(v)
	}
	return out, nil
}
