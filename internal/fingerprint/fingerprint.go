// Package fingerprint implements §4 of the paper: TLS client fingerprints
// built from the Client Hello, the fingerprint database with its collision
// rules, and the §4.1 lifetime statistics.
//
// A fingerprint is the concatenation of four features in wire order: the
// cipher-suite list, the client extension list, the supported elliptic
// curves, and the EC point formats. GREASE values are identified and removed
// first, exactly as the paper does for Chrome-lineage clients.
package fingerprint

import (
	"fmt"
	"strings"

	"tlsage/internal/registry"
	"tlsage/internal/wire"
)

// Fingerprint is the canonical string form of a client fingerprint. It is
// stable across runs and usable as a map key and log token.
type Fingerprint string

// FromParts computes the fingerprint from the four Client Hello features.
// All inputs are taken in wire order; GREASE values are stripped.
func FromParts(suites []uint16, exts []registry.ExtensionID, curves []registry.CurveID, pfs []registry.ECPointFormat) Fingerprint {
	var b strings.Builder
	b.Grow(4*len(suites) + 4*len(exts) + 4*len(curves) + 2*len(pfs) + 16)
	b.WriteString("cs:")
	writeHex16(&b, registry.StripGREASE16(suites))
	b.WriteString("|ext:")
	extsClean := registry.StripGREASEExt(exts)
	u := make([]uint16, len(extsClean))
	for i, e := range extsClean {
		u[i] = uint16(e)
	}
	writeHex16(&b, u)
	b.WriteString("|grp:")
	curvesClean := registry.StripGREASECurves(curves)
	u = u[:0]
	for _, c := range curvesClean {
		u = append(u, uint16(c))
	}
	writeHex16(&b, u)
	b.WriteString("|pf:")
	u = u[:0]
	for _, p := range pfs {
		u = append(u, uint16(p))
	}
	writeHex16(&b, u)
	return Fingerprint(b.String())
}

func writeHex16(b *strings.Builder, vals []uint16) {
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%04x", v)
	}
}

// FromClientHello computes the fingerprint of a parsed hello.
func FromClientHello(ch *wire.ClientHello) Fingerprint {
	return FromParts(ch.CipherSuites, ch.ExtensionIDs(), ch.SupportedGroups(), ch.ECPointFormats())
}

// Usable reports whether a hello carries enough of the §4 feature set to be
// fingerprinted meaningfully. The paper requires the fingerprinting fields
// introduced into the Notary in February 2014; here the proxy is a non-empty
// cipher list.
func Usable(suites []uint16) bool {
	return len(registry.StripGREASE16(suites)) > 0
}
