package fingerprint

import (
	"reflect"
	"testing"

	"tlsage/internal/registry"
)

// TestParseRoundTrip: Parse inverts FromParts for real hello shapes,
// including GREASE-laden lists (stripped at fingerprint time, so the
// canonical string round-trips exactly).
func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		suites []uint16
		exts   []registry.ExtensionID
		curves []registry.CurveID
		pfs    []registry.ECPointFormat
	}{
		{
			suites: []uint16{0xc02f, 0xc030, 0x009c, 0x00ff},
			exts:   []registry.ExtensionID{registry.ExtServerName, registry.ExtSessionTicket},
			curves: []registry.CurveID{registry.CurveX25519, registry.CurveSecp256r1},
			pfs:    []registry.ECPointFormat{0},
		},
		{ // GREASE in every list
			suites: []uint16{0x0a0a, 0xc02f},
			exts:   []registry.ExtensionID{0x1a1a, registry.ExtServerName},
			curves: []registry.CurveID{0x2a2a, registry.CurveX25519},
			pfs:    []registry.ECPointFormat{0, 1},
		},
		{ // empty feature lists
			suites: []uint16{0x009c},
		},
		{},
	}
	for i, c := range cases {
		fp := FromParts(c.suites, c.exts, c.curves, c.pfs)
		suites, exts, curves, pfs, err := Parse(string(fp))
		if err != nil {
			t.Fatalf("case %d: Parse(%q): %v", i, fp, err)
		}
		if re := FromParts(suites, exts, curves, pfs); re != fp {
			t.Fatalf("case %d: round trip %q -> %q", i, fp, re)
		}
		wantSuites := registry.StripGREASE16(c.suites)
		if len(wantSuites) != len(suites) || (len(suites) > 0 && !reflect.DeepEqual(suites, wantSuites)) {
			t.Fatalf("case %d: suites %v, want %v", i, suites, wantSuites)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",
		"cs:|ext:|grp:",             // three sections
		"cs:|ext:|grp:|pf:|x:",      // five sections
		"xx:|ext:|grp:|pf:",         // wrong tag
		"cs:c02f|ext:ZZZZ|grp:|pf:", // non-hex
		"cs:c02f|ext:C02F|grp:|pf:", // uppercase (not canonical)
		"cs:c2f|ext:|grp:|pf:",      // short code point
		"cs:c02f,|ext:|grp:|pf:",    // trailing comma
		"cs:|ext:|grp:|pf:c02f",     // point format over a byte
		"cs:c02fc030|ext:|grp:|pf:", // missing comma
		"cs: c02f|ext:|grp:|pf:",    // stray space
	} {
		if _, _, _, _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

// FuzzFingerprintParse: arbitrary bytes never panic the parser, and any
// accepted string re-emits and re-parses stably (parse∘emit is a
// retraction onto canonical fingerprints).
func FuzzFingerprintParse(f *testing.F) {
	f.Add("")
	f.Add("cs:|ext:|grp:|pf:")
	f.Add(string(FromParts(
		[]uint16{0xc02f, 0x009c, 0x0a0a},
		[]registry.ExtensionID{registry.ExtServerName},
		[]registry.CurveID{registry.CurveX25519},
		[]registry.ECPointFormat{0})))
	f.Fuzz(func(t *testing.T, s string) {
		suites, exts, curves, pfs, err := Parse(s)
		if err != nil {
			return
		}
		fp := FromParts(suites, exts, curves, pfs)
		s2, e2, c2, p2, err := Parse(string(fp))
		if err != nil {
			t.Fatalf("re-emitted fingerprint %q failed to parse: %v", fp, err)
		}
		if re := FromParts(s2, e2, c2, p2); re != fp {
			t.Fatalf("unstable round trip: %q -> %q", fp, re)
		}
	})
}
