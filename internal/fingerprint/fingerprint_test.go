package fingerprint

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tlsage/internal/clientdb"
	"tlsage/internal/notary"
	"tlsage/internal/registry"
	"tlsage/internal/timeline"
	"tlsage/internal/wire"
)

func TestFromPartsStable(t *testing.T) {
	suites := []uint16{0xC02F, 0x002F}
	exts := []registry.ExtensionID{registry.ExtServerName, registry.ExtSupportedGroups}
	curves := []registry.CurveID{registry.CurveX25519}
	pfs := []registry.ECPointFormat{registry.PointFormatUncompressed}
	a := FromParts(suites, exts, curves, pfs)
	b := FromParts(suites, exts, curves, pfs)
	if a != b {
		t.Error("fingerprint not deterministic")
	}
	if a == "" {
		t.Error("empty fingerprint")
	}
	// Order matters: a reordered suite list is a different client.
	c := FromParts([]uint16{0x002F, 0xC02F}, exts, curves, pfs)
	if a == c {
		t.Error("suite order should change the fingerprint")
	}
}

func TestGREASEInvariance(t *testing.T) {
	// §4: GREASE values are identified and removed, so two hellos differing
	// only in GREASE placement fingerprint identically.
	plain := FromParts(
		[]uint16{0xC02F, 0x002F},
		[]registry.ExtensionID{registry.ExtServerName},
		[]registry.CurveID{registry.CurveX25519},
		nil)
	greased := FromParts(
		[]uint16{0x0a0a, 0xC02F, 0x002F},
		[]registry.ExtensionID{registry.ExtServerName, registry.ExtensionID(0x1a1a)},
		[]registry.CurveID{registry.CurveID(0x2a2a), registry.CurveX25519},
		nil)
	if plain != greased {
		t.Errorf("GREASE changed fingerprint:\n%s\n%s", plain, greased)
	}
}

func TestGREASEInvarianceProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	greaseVals := registry.GREASEValues()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rnd.Int63()))
		n := 1 + r.Intn(10)
		suites := make([]uint16, n)
		for i := range suites {
			suites[i] = uint16(r.Intn(0x10000))
			if registry.IsGREASE(suites[i]) {
				suites[i]++
			}
		}
		// Insert GREASE at a random position.
		withGrease := make([]uint16, 0, n+1)
		pos := r.Intn(n + 1)
		withGrease = append(withGrease, suites[:pos]...)
		withGrease = append(withGrease, greaseVals[r.Intn(len(greaseVals))])
		withGrease = append(withGrease, suites[pos:]...)
		return FromParts(suites, nil, nil, nil) == FromParts(withGrease, nil, nil, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFromClientHelloMatchesFromParts(t *testing.T) {
	ch := &wire.ClientHello{
		Version:      registry.VersionTLS12,
		CipherSuites: []uint16{0xC02F, 0x002F},
		Extensions: []wire.Extension{
			wire.NewServerNameExtension("x.test"),
			wire.NewSupportedGroupsExtension([]registry.CurveID{registry.CurveSecp256r1}),
			wire.NewECPointFormatsExtension([]registry.ECPointFormat{registry.PointFormatUncompressed}),
		},
	}
	got := FromClientHello(ch)
	want := FromParts(ch.CipherSuites,
		[]registry.ExtensionID{registry.ExtServerName, registry.ExtSupportedGroups, registry.ExtECPointFormats},
		[]registry.CurveID{registry.CurveSecp256r1},
		[]registry.ECPointFormat{registry.PointFormatUncompressed})
	if got != want {
		t.Errorf("mismatch:\n%s\n%s", got, want)
	}
}

func TestDBCollisionRules(t *testing.T) {
	fp := Fingerprint("cs:002f|ext:|grp:|pf:")
	// Same software: versions merge.
	db := NewDB()
	db.Add(fp, "Chrome", clientdb.ClassBrowser, "29")
	db.Add(fp, "Chrome", clientdb.ClassBrowser, "31")
	e, ok := db.Lookup(fp)
	if !ok || len(e.Versions) != 2 {
		t.Fatalf("merge failed: %+v", e)
	}
	// Software vs library: library wins (Chrome on Android → Android SDK).
	db = NewDB()
	db.Add(fp, "Chrome", clientdb.ClassBrowser, "29")
	db.Add(fp, "Android SDK", clientdb.ClassLibrary, "5.0")
	e, _ = db.Lookup(fp)
	if e.Software != "Android SDK" {
		t.Errorf("library should win, got %s", e.Software)
	}
	// Library first, software second: library still wins.
	db = NewDB()
	db.Add(fp, "Android SDK", clientdb.ClassLibrary, "5.0")
	db.Add(fp, "Chrome", clientdb.ClassBrowser, "29")
	e, _ = db.Lookup(fp)
	if e.Software != "Android SDK" {
		t.Errorf("library should win, got %s", e.Software)
	}
	// Two different programs: fingerprint removed and stays removed.
	db = NewDB()
	db.Add(fp, "Chrome", clientdb.ClassBrowser, "29")
	db.Add(fp, "Zbot", clientdb.ClassMalware, "1")
	if _, ok := db.Lookup(fp); ok {
		t.Error("ambiguous fingerprint should be removed")
	}
	if db.RemovedCount() != 1 {
		t.Error("removed tombstone missing")
	}
	db.Add(fp, "Chrome", clientdb.ClassBrowser, "29")
	if _, ok := db.Lookup(fp); ok {
		t.Error("tombstoned fingerprint resurrected")
	}
}

func TestBuildDefaultMatchesTable2Counts(t *testing.T) {
	db := BuildDefault()
	counts := db.CountByClass()
	for class, want := range Table2Targets() {
		got := counts[class]
		// Collisions can leave a class one or two short of its target.
		if got < want-5 || got > want {
			t.Errorf("class %s: %d fingerprints, want ≈%d", class, got, want)
		}
	}
	total := db.Size()
	if total < 1500 || total > 1600 {
		t.Errorf("total fingerprints = %d, want ≈1562 (Table 2 rows)", total)
	}
}

func TestBuildDefaultDeterministic(t *testing.T) {
	a := BuildDefault()
	b := BuildDefault()
	if a.Size() != b.Size() {
		t.Fatal("database size not deterministic")
	}
	fa, fb := a.Fingerprints(), b.Fingerprints()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("database contents not deterministic")
		}
	}
}

func TestBuildDefaultLabelsBaseConfigs(t *testing.T) {
	// Every labeled profile's release fingerprint must resolve to that
	// profile (or to a library it collided into).
	db := BuildDefault()
	missed := 0
	for _, p := range clientdb.LabeledProfiles() {
		for _, rel := range p.Releases {
			fp := FromParts(rel.Config.Suites, rel.Config.Extensions, rel.Config.Curves, rel.Config.PointFormats)
			if _, ok := db.Lookup(fp); !ok {
				missed++
			}
		}
	}
	// A handful of collisions are acceptable (they are the paper's 7.3%
	// collision observation); wholesale misses are not.
	if missed > 6 {
		t.Errorf("%d labeled release fingerprints missing from DB", missed)
	}
}

func TestUsable(t *testing.T) {
	if Usable(nil) || Usable([]uint16{0x0a0a}) {
		t.Error("empty/GREASE-only lists should be unusable")
	}
	if !Usable([]uint16{0x002F}) {
		t.Error("real list should be usable")
	}
}

func TestDurationStats(t *testing.T) {
	d := func(days int, conns int64) notary.FPDuration {
		first := timeline.D(2015, time.January, 1)
		return notary.FPDuration{
			First: first,
			Last:  timeline.D(2015, time.January, 1+days-1),
			Days:  days, Connections: conns,
		}
	}
	durs := []notary.FPDuration{
		d(1, 10), d(1, 5), d(1, 5), d(1, 10), // single-day
		d(100, 1000),
		d(1300, 50000), // long-lived
	}
	st := ComputeDurationStats(durs)
	if st.Total != 6 || st.SingleDay != 4 || st.LongLived != 1 {
		t.Fatalf("%+v", st)
	}
	if st.MedianDays != 1 {
		t.Errorf("median = %v, want 1 (the paper's headline §4.1 stat)", st.MedianDays)
	}
	if st.MaxDays != 1300 {
		t.Errorf("max = %v", st.MaxDays)
	}
	if st.MeanDays < 230 || st.MeanDays > 235 {
		t.Errorf("mean = %v", st.MeanDays)
	}
	if st.SingleDayConns != 30 || st.LongLivedConns != 50000 {
		t.Errorf("connection attribution wrong: %+v", st)
	}
	// Degenerate inputs.
	if st := ComputeDurationStats(nil); st.Total != 0 {
		t.Error("empty stats")
	}
	if st := ComputeDurationStats(durs[:1]); st.MedianDays != 1 {
		t.Error("single-element stats")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if q := quantile(vals, 0.5); q != 2.5 {
		t.Errorf("median = %v", q)
	}
	if q := quantile(vals, 1.0); q != 4 {
		t.Errorf("max quantile = %v", q)
	}
	if q := quantile(vals, 0); q != 1 {
		t.Errorf("min quantile = %v", q)
	}
}
