package fingerprint

import (
	"math/rand"
	"sort"

	"tlsage/internal/clientdb"
	"tlsage/internal/registry"
)

// Entry labels one fingerprint with the software it identifies.
type Entry struct {
	Software string
	Class    clientdb.Class
	Versions []string
}

// DB is the fingerprint database with the paper's collision semantics:
//
//   - The same software colliding with itself merges version ranges.
//   - A collision between specific software and a library attributes the
//     fingerprint to the library ("we assume that the software uses the
//     library"; this is why Chrome on Android is identified as Android SDK).
//   - A collision between two different non-library programs removes the
//     fingerprint — it cannot uniquely identify a client.
type DB struct {
	entries map[Fingerprint]Entry
	removed map[Fingerprint]bool
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		entries: make(map[Fingerprint]Entry),
		removed: make(map[Fingerprint]bool),
	}
}

// Add registers fp for the given software, applying collision rules.
func (db *DB) Add(fp Fingerprint, software string, class clientdb.Class, version string) {
	if db.removed[fp] {
		return
	}
	cur, exists := db.entries[fp]
	if !exists {
		db.entries[fp] = Entry{Software: software, Class: class, Versions: []string{version}}
		return
	}
	if cur.Software == software {
		cur.Versions = append(cur.Versions, version)
		db.entries[fp] = cur
		return
	}
	curIsLib := cur.Class == clientdb.ClassLibrary
	newIsLib := class == clientdb.ClassLibrary
	switch {
	case curIsLib && !newIsLib:
		// Library wins; keep the current entry.
	case newIsLib && !curIsLib:
		db.entries[fp] = Entry{Software: software, Class: class, Versions: []string{version}}
	default:
		// Two distinct programs (or two distinct libraries): ambiguous.
		delete(db.entries, fp)
		db.removed[fp] = true
	}
}

// Lookup returns the entry for fp.
func (db *DB) Lookup(fp Fingerprint) (Entry, bool) {
	e, ok := db.entries[fp]
	return e, ok
}

// ClassOf attributes a fingerprint string to its client-class name. It is
// notary.Classifier: a DB installed on an aggregate fills ByClientClass as
// records stream in.
func (db *DB) ClassOf(fp string) (string, bool) {
	e, ok := db.entries[Fingerprint(fp)]
	if !ok {
		return "", false
	}
	return string(e.Class), true
}

// Size reports the number of usable fingerprints.
func (db *DB) Size() int { return len(db.entries) }

// RemovedCount reports fingerprints dropped due to collisions.
func (db *DB) RemovedCount() int { return len(db.removed) }

// CountByClass returns the number of fingerprints per class (Table 2's
// "№ FPs" column).
func (db *DB) CountByClass() map[clientdb.Class]int {
	out := make(map[clientdb.Class]int)
	for _, e := range db.entries {
		out[e.Class]++
	}
	return out
}

// Fingerprints returns all registered fingerprints, sorted.
func (db *DB) Fingerprints() []Fingerprint {
	out := make([]Fingerprint, 0, len(db.entries))
	for fp := range db.entries {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// table2Targets is the per-class fingerprint count from Table 2. (The
// table's rows sum to 1,562 although its "All" row prints 1,684 — the
// original's arithmetic, reproduced as printed rows.)
var table2Targets = map[clientdb.Class]int{
	clientdb.ClassLibrary:      700,
	clientdb.ClassBrowser:      193,
	clientdb.ClassOSTool:       13,
	clientdb.ClassMobileApp:    489,
	clientdb.ClassDevTool:      12,
	clientdb.ClassAV:           44,
	clientdb.ClassCloudStorage: 29,
	clientdb.ClassEmail:        33,
	clientdb.ClassMalware:      49,
}

// Table2Targets returns a copy of the per-class targets.
func Table2Targets() map[clientdb.Class]int {
	out := make(map[clientdb.Class]int, len(table2Targets))
	for k, v := range table2Targets {
		out[k] = v
	}
	return out
}

// BuildDefault constructs the study fingerprint database: one fingerprint
// per labeled profile release, then deterministic minor-build variants per
// class until the Table 2 per-class counts are met. Variants model the point
// releases, platform builds and configuration tweaks that give real products
// many fingerprints each (BrowserStack sweeps, multiple compiled OpenSSL
// versions, §4).
func BuildDefault() *DB {
	db := NewDB()
	rnd := rand.New(rand.NewSource(4242)) // fixed seed: the DB is a dataset

	byClass := make(map[clientdb.Class][]*clientdb.Profile)
	for _, p := range clientdb.LabeledProfiles() {
		byClass[p.Class] = append(byClass[p.Class], p)
		for _, rel := range p.Releases {
			fp := fromConfig(&rel.Config)
			db.Add(fp, p.Name, p.Class, rel.Version)
		}
	}

	for _, class := range clientdb.AllClasses() {
		target := table2Targets[class]
		profiles := byClass[class]
		if len(profiles) == 0 {
			continue
		}
		guard := 0
		for db.CountByClass()[class] < target && guard < target*20 {
			guard++
			p := profiles[rnd.Intn(len(profiles))]
			rel := p.Releases[rnd.Intn(len(p.Releases))]
			cfg := variantConfig(&rel.Config, rnd)
			db.Add(fromConfig(cfg), p.Name, p.Class, rel.Version+"-var")
		}
	}
	return db
}

// fromConfig fingerprints a client configuration's primary hello shape.
func fromConfig(c *clientdb.Config) Fingerprint {
	return FromParts(c.Suites, c.Extensions, c.Curves, c.PointFormats)
}

// benignExtras are extensions a platform build can plausibly toggle without
// changing the software's identity class.
var benignExtras = []registry.ExtensionID{
	registry.ExtPadding, registry.ExtTokenBinding, registry.ExtCachedInfo,
	registry.ExtUserMapping, registry.ExtTruncatedHMAC, registry.ExtMaxFragmentLength,
	registry.ExtStatusRequestV2, registry.ExtUseSRTP, registry.ExtChannelID,
	registry.ExtNextProtoNego, registry.ExtEncryptThenMAC, registry.ExtExtendedMasterSecret,
}

// variantConfig derives a deterministic minor variant of a configuration:
// the kind of difference a point release or platform build produces. One to
// three mutations are stacked, each parameterized by position, so the
// variant space per base config is in the thousands.
func variantConfig(base *clientdb.Config, rnd *rand.Rand) *clientdb.Config {
	c := *base
	c.Suites = append([]uint16(nil), base.Suites...)
	c.Extensions = append([]registry.ExtensionID(nil), base.Extensions...)
	c.Curves = append([]registry.CurveID(nil), base.Curves...)

	muts := 1 + rnd.Intn(3)
	for i := 0; i < muts; i++ {
		switch rnd.Intn(6) {
		case 0: // swap two adjacent non-leading suites
			if len(c.Suites) >= 3 {
				i := 1 + rnd.Intn(len(c.Suites)-2)
				c.Suites[i], c.Suites[i+1] = c.Suites[i+1], c.Suites[i]
			} else {
				c.Suites = append(c.Suites, 0x00FF)
			}
		case 1: // toggle the renegotiation SCSV at the tail
			if n := len(c.Suites); n > 0 && c.Suites[n-1] == 0x00FF {
				c.Suites = c.Suites[:n-1]
			} else {
				c.Suites = append(c.Suites, 0x00FF)
			}
		case 2: // drop a non-leading suite (stripped-down platform build)
			if len(c.Suites) >= 3 {
				i := 1 + rnd.Intn(len(c.Suites)-1)
				c.Suites = append(c.Suites[:i], c.Suites[i+1:]...)
			}
		case 3: // drop an extension
			if len(c.Extensions) > 1 {
				i := rnd.Intn(len(c.Extensions))
				c.Extensions = append(c.Extensions[:i], c.Extensions[i+1:]...)
			} else {
				c.Extensions = append(c.Extensions, benignExtras[rnd.Intn(len(benignExtras))])
			}
		case 4: // add a benign extension at a position
			e := benignExtras[rnd.Intn(len(benignExtras))]
			i := rnd.Intn(len(c.Extensions) + 1)
			c.Extensions = append(c.Extensions[:i],
				append([]registry.ExtensionID{e}, c.Extensions[i:]...)...)
		default: // extend or trim the curve list
			if len(c.Curves) > 1 && rnd.Intn(2) == 0 {
				c.Curves = c.Curves[:len(c.Curves)-1]
			} else {
				extra := []registry.CurveID{
					registry.CurveSecp224r1, registry.CurveSecp521r1,
					registry.CurveSect283k1, registry.CurveBrainpoolP256r1,
					registry.CurveSect571r1,
				}
				c.Curves = append(c.Curves, extra[rnd.Intn(len(extra))])
			}
		}
	}
	return &c
}
