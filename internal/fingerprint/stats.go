package fingerprint

import (
	"math"
	"sort"

	"tlsage/internal/notary"
)

// DurationStats summarizes fingerprint lifetimes the way §4.1 reports them.
type DurationStats struct {
	Total          int
	SingleDay      int // fingerprints seen on one day only
	LongLived      int // fingerprints seen for more than LongLivedDays
	MedianDays     float64
	MeanDays       float64
	Q3Days         float64
	StdDevDays     float64
	MaxDays        int
	SingleDayConns int64 // connections attributable to single-day fingerprints
	LongLivedConns int64
	TotalConns     int64
}

// LongLivedDays is the §4.1 threshold: fingerprints seen for more than
// 1,200 days.
const LongLivedDays = 1200

// ComputeDurationStats derives §4.1's statistics from per-fingerprint
// lifetimes.
func ComputeDurationStats(durations []notary.FPDuration) DurationStats {
	var st DurationStats
	st.Total = len(durations)
	if st.Total == 0 {
		return st
	}
	days := make([]float64, len(durations))
	sum := 0.0
	for i, d := range durations {
		days[i] = float64(d.Days)
		sum += days[i]
		st.TotalConns += d.Connections
		if d.Days <= 1 {
			st.SingleDay++
			st.SingleDayConns += d.Connections
		}
		if d.Days > LongLivedDays {
			st.LongLived++
			st.LongLivedConns += d.Connections
		}
		if d.Days > st.MaxDays {
			st.MaxDays = d.Days
		}
	}
	sort.Float64s(days)
	st.MedianDays = quantile(days, 0.5)
	st.Q3Days = quantile(days, 0.75)
	st.MeanDays = sum / float64(len(days))
	varSum := 0.0
	for _, v := range days {
		varSum += (v - st.MeanDays) * (v - st.MeanDays)
	}
	st.StdDevDays = math.Sqrt(varSum / float64(len(days)))
	return st
}

// quantile returns the q-quantile of sorted values using linear
// interpolation between order statistics.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
