package registry

import (
	"fmt"
	"sort"
	"sync"
)

var (
	suiteOnce   sync.Once
	suiteByID   map[uint16]Suite
	suiteByName map[string]uint16
)

func buildSuiteIndex() {
	suiteByID = make(map[uint16]Suite, len(suiteTable))
	suiteByName = make(map[string]uint16, len(suiteTable))
	for _, s := range suiteTable {
		if _, dup := suiteByID[s.ID]; dup {
			panic(fmt.Sprintf("registry: duplicate suite id %#04x", s.ID))
		}
		suiteByID[s.ID] = s
		suiteByName[s.Name] = s.ID
	}
}

// SuiteByID returns the suite registered under id. The second return is false
// for unregistered code points (including GREASE values).
func SuiteByID(id uint16) (Suite, bool) {
	suiteOnce.Do(buildSuiteIndex)
	s, ok := suiteByID[id]
	return s, ok
}

// MustSuite returns the suite registered under id and panics if unknown.
// Intended for static client/server profile tables, where an unknown ID is a
// programming error.
func MustSuite(id uint16) Suite {
	s, ok := SuiteByID(id)
	if !ok {
		panic(fmt.Sprintf("registry: unknown cipher suite %#04x", id))
	}
	return s
}

// SuiteIDByName resolves a suite name ("TLS_RSA_WITH_RC4_128_SHA") to its
// code point.
func SuiteIDByName(name string) (uint16, bool) {
	suiteOnce.Do(buildSuiteIndex)
	id, ok := suiteByName[name]
	return id, ok
}

// AllSuites returns a copy of the full registry sorted by code point.
func AllSuites() []Suite {
	suiteOnce.Do(buildSuiteIndex)
	out := make([]Suite, len(suiteTable))
	copy(out, suiteTable)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumSuites reports the size of the registry.
func NumSuites() int { return len(suiteTable) }

// SuitesWhere returns the code points of all registered suites matching pred,
// sorted ascending.
func SuitesWhere(pred func(Suite) bool) []uint16 {
	var out []uint16
	for _, s := range AllSuites() {
		if pred(s) {
			out = append(out, s.ID)
		}
	}
	return out
}

// Classify buckets a raw code-point list using the registry. Unknown and
// signalling (SCSV) code points are ignored, matching how the Notary analysis
// treats them. The returned map is keyed by TrafficClass.
func Classify(ids []uint16) map[string]int {
	out := make(map[string]int, 4)
	for _, id := range ids {
		s, ok := SuiteByID(id)
		if !ok || id == 0x00FF || id == 0x5600 {
			continue
		}
		out[s.TrafficClass()]++
	}
	return out
}

// ListHas reports whether any suite in ids satisfies pred. Unregistered code
// points never match.
func ListHas(ids []uint16, pred func(Suite) bool) bool {
	for _, id := range ids {
		if s, ok := SuiteByID(id); ok && pred(s) {
			return true
		}
	}
	return false
}

// FirstIndexWhere returns the index of the first suite in ids satisfying
// pred, or -1. Figure 5 of the paper is built on this: the relative position
// of the first AEAD/CBC/RC4/DES/3DES suite in the advertised list.
func FirstIndexWhere(ids []uint16, pred func(Suite) bool) int {
	for i, id := range ids {
		if s, ok := SuiteByID(id); ok && pred(s) {
			return i
		}
	}
	return -1
}
