package registry

import "fmt"

// ExtensionID is a TLS extension code point from the IANA ExtensionType
// registry. The paper notes 28 standardized extensions as of March 2018; all
// of them are listed here, together with the renegotiation_info value and the
// draft code points the study's fingerprints contain.
type ExtensionID uint16

// Standardized extensions as of the study period.
const (
	ExtServerName           ExtensionID = 0
	ExtMaxFragmentLength    ExtensionID = 1
	ExtClientCertificateURL ExtensionID = 2
	ExtTrustedCAKeys        ExtensionID = 3
	ExtTruncatedHMAC        ExtensionID = 4
	ExtStatusRequest        ExtensionID = 5
	ExtUserMapping          ExtensionID = 6
	ExtClientAuthz          ExtensionID = 7
	ExtServerAuthz          ExtensionID = 8
	ExtCertType             ExtensionID = 9
	ExtSupportedGroups      ExtensionID = 10 // née elliptic_curves
	ExtECPointFormats       ExtensionID = 11
	ExtSRP                  ExtensionID = 12
	ExtSignatureAlgorithms  ExtensionID = 13
	ExtUseSRTP              ExtensionID = 14
	ExtHeartbeat            ExtensionID = 15 // RFC 6520; Heartbleed (§5.4)
	ExtALPN                 ExtensionID = 16
	ExtStatusRequestV2      ExtensionID = 17
	ExtSignedCertTimestamp  ExtensionID = 18
	ExtClientCertType       ExtensionID = 19
	ExtServerCertType       ExtensionID = 20
	ExtPadding              ExtensionID = 21
	ExtEncryptThenMAC       ExtensionID = 22 // Lucky 13 response (§9)
	ExtExtendedMasterSecret ExtensionID = 23
	ExtTokenBinding         ExtensionID = 24
	ExtCachedInfo           ExtensionID = 25
	ExtSessionTicket        ExtensionID = 35
	ExtPreSharedKey         ExtensionID = 41
	ExtEarlyData            ExtensionID = 42
	ExtSupportedVersions    ExtensionID = 43 // TLS 1.3 version negotiation (§6.4)
	ExtCookie               ExtensionID = 44
	ExtPSKKeyExchangeModes  ExtensionID = 45
	ExtCertAuthorities      ExtensionID = 47
	ExtOIDFilters           ExtensionID = 48
	ExtPostHandshakeAuth    ExtensionID = 49
	ExtSigAlgsCert          ExtensionID = 50
	ExtKeyShare             ExtensionID = 51
	ExtNextProtoNego        ExtensionID = 13172 // NPN, pre-ALPN Google draft
	ExtChannelID            ExtensionID = 30032 // Google Channel ID draft
	ExtRenegotiationInfo    ExtensionID = 0xFF01
)

var extensionNames = map[ExtensionID]string{
	ExtServerName:           "server_name",
	ExtMaxFragmentLength:    "max_fragment_length",
	ExtClientCertificateURL: "client_certificate_url",
	ExtTrustedCAKeys:        "trusted_ca_keys",
	ExtTruncatedHMAC:        "truncated_hmac",
	ExtStatusRequest:        "status_request",
	ExtUserMapping:          "user_mapping",
	ExtClientAuthz:          "client_authz",
	ExtServerAuthz:          "server_authz",
	ExtCertType:             "cert_type",
	ExtSupportedGroups:      "supported_groups",
	ExtECPointFormats:       "ec_point_formats",
	ExtSRP:                  "srp",
	ExtSignatureAlgorithms:  "signature_algorithms",
	ExtUseSRTP:              "use_srtp",
	ExtHeartbeat:            "heartbeat",
	ExtALPN:                 "application_layer_protocol_negotiation",
	ExtStatusRequestV2:      "status_request_v2",
	ExtSignedCertTimestamp:  "signed_certificate_timestamp",
	ExtClientCertType:       "client_certificate_type",
	ExtServerCertType:       "server_certificate_type",
	ExtPadding:              "padding",
	ExtEncryptThenMAC:       "encrypt_then_mac",
	ExtExtendedMasterSecret: "extended_master_secret",
	ExtTokenBinding:         "token_binding",
	ExtCachedInfo:           "cached_info",
	ExtSessionTicket:        "session_ticket",
	ExtPreSharedKey:         "pre_shared_key",
	ExtEarlyData:            "early_data",
	ExtSupportedVersions:    "supported_versions",
	ExtCookie:               "cookie",
	ExtPSKKeyExchangeModes:  "psk_key_exchange_modes",
	ExtCertAuthorities:      "certificate_authorities",
	ExtOIDFilters:           "oid_filters",
	ExtPostHandshakeAuth:    "post_handshake_auth",
	ExtSigAlgsCert:          "signature_algorithms_cert",
	ExtKeyShare:             "key_share",
	ExtNextProtoNego:        "next_protocol_negotiation",
	ExtChannelID:            "channel_id",
	ExtRenegotiationInfo:    "renegotiation_info",
}

// String returns the IANA name of the extension, or a hex rendering for
// unregistered values.
func (e ExtensionID) String() string {
	if n, ok := extensionNames[e]; ok {
		return n
	}
	return fmt.Sprintf("extension(%#04x)", uint16(e))
}

// Known reports whether e is a registered (or well-known draft) extension.
func (e ExtensionID) Known() bool {
	_, ok := extensionNames[e]
	return ok
}

// AllExtensions returns the registered extension IDs in ascending order.
func AllExtensions() []ExtensionID {
	out := make([]ExtensionID, 0, len(extensionNames))
	for e := range extensionNames {
		out = append(out, e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
