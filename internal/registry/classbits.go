package registry

import (
	"math/bits"
	"sync"
)

// ClassBits is a bitmask of the suite classes the analysis pipeline
// classifies cipher lists on. It exists so the aggregation hot path can
// characterise a whole advertised list in a single pass over a dense
// (suite ID → bitmask) table instead of re-walking the list once per
// predicate through per-ID map lookups.
type ClassBits uint16

// Class bits, one per classifier the monthly aggregation needs. GCM128 and
// GCM256 split ClassAEAD by key size for the Figure 10 breakdown.
const (
	ClassRC4 ClassBits = 1 << iota
	ClassDES
	Class3DES
	ClassAEAD
	ClassCBC
	ClassExport
	ClassAnon
	ClassNULL
	ClassGCM128
	ClassGCM256
	ClassChaCha
	ClassCCM

	// NumClassBits is the number of distinct class bits defined above.
	NumClassBits = 12
)

// Has reports whether any bit of c is set in b.
func (b ClassBits) Has(c ClassBits) bool { return b&c != 0 }

// classBitsOf decomposes one registered suite into its class bitmask. It is
// the single source of truth tying ClassBits to the Suite predicates.
func classBitsOf(s Suite) ClassBits {
	var b ClassBits
	if s.IsRC4() {
		b |= ClassRC4
	}
	if s.IsDES() {
		b |= ClassDES
	}
	if s.Is3DES() {
		b |= Class3DES
	}
	if s.IsAEAD() {
		b |= ClassAEAD
	}
	if s.IsCBC() {
		b |= ClassCBC
	}
	if s.IsExport() {
		b |= ClassExport
	}
	if s.IsAnon() {
		b |= ClassAnon
	}
	if s.IsNULLCipher() {
		b |= ClassNULL
	}
	if s.Mode == ModeGCM && s.Cipher == CipherAES128 {
		b |= ClassGCM128
	}
	if s.Mode == ModeGCM && s.Cipher == CipherAES256 {
		b |= ClassGCM256
	}
	if s.Cipher == CipherChaCha20 {
		b |= ClassChaCha
	}
	if s.Mode == ModeCCM || s.Mode == ModeCCM8 {
		b |= ClassCCM
	}
	return b
}

var (
	classBitsOnce sync.Once
	// classBitsTab is dense over the full uint16 code-point space (128 KiB):
	// unregistered and GREASE code points stay zero, so a lookup needs no
	// bounds logic and no map hashing.
	classBitsTab []ClassBits
)

func buildClassBitsTab() {
	tab := make([]ClassBits, 1<<16)
	for _, s := range suiteTable {
		tab[s.ID] = classBitsOf(s)
	}
	classBitsTab = tab
}

// SuiteClassBits returns the class bitmask of the suite registered under id,
// or 0 for unregistered code points (including GREASE values).
func SuiteClassBits(id uint16) ClassBits {
	classBitsOnce.Do(buildClassBitsTab)
	return classBitsTab[id]
}

// SuiteScan is the one-pass summary of a cipher-suite list: the union of all
// class bits present plus, per class bit, the index of the first suite in the
// list carrying it (-1 when absent). Indexes are positions in the scanned
// list, so unknown code points still occupy a slot — the Figure 5 relative
// positions depend on that.
type SuiteScan struct {
	Bits  ClassBits
	first [NumClassBits]int32
}

// FirstIndex returns the index of the first suite carrying class bit c, or
// -1 when the list has none. c must be a single class bit.
func (sc *SuiteScan) FirstIndex(c ClassBits) int {
	return int(sc.first[bits.TrailingZeros16(uint16(c))])
}

// ScanSuites characterises ids in a single pass over the dense class table.
// It subsumes one ListHas call per class plus one FirstIndexWhere call per
// position class, and performs no allocation.
func ScanSuites(ids []uint16) SuiteScan {
	classBitsOnce.Do(buildClassBitsTab)
	var sc SuiteScan
	for i := range sc.first {
		sc.first[i] = -1
	}
	tab := classBitsTab
	for i, id := range ids {
		b := tab[id]
		if b == 0 {
			continue
		}
		fresh := b &^ sc.Bits
		sc.Bits |= b
		for fresh != 0 {
			bit := fresh & (fresh - 1) ^ fresh
			sc.first[bits.TrailingZeros16(uint16(bit))] = int32(i)
			fresh &^= bit
		}
	}
	return sc
}
