// Package registry holds the static IANA-derived TLS parameter registries the
// rest of the system is built on: protocol versions, cipher suites, TLS
// extensions, named elliptic curves, EC point formats and GREASE values.
//
// The data mirrors the registries referenced by the paper (IANA "TLS
// parameters" and "TLS ExtensionType values" as of 2018) closely enough that
// every cipher suite, extension and curve the study discusses is present with
// its real code point. Lookup is by numeric ID, wire order is preserved
// everywhere, and all slices returned by the package are copies so callers
// can mutate them freely.
package registry

import "fmt"

// Version is a TLS protocol version as carried on the wire (major<<8|minor).
// SSL 2 is represented by its conventional 0x0002 value even though the SSLv2
// record format does not actually carry it in this form.
type Version uint16

// Wire values for every SSL/TLS protocol version the study observes,
// including the TLS 1.3 draft and Google-experimental values seen in the
// supported_versions extension (§6.4 of the paper).
const (
	VersionSSL2  Version = 0x0002
	VersionSSL3  Version = 0x0300
	VersionTLS10 Version = 0x0301
	VersionTLS11 Version = 0x0302
	VersionTLS12 Version = 0x0303
	VersionTLS13 Version = 0x0304

	// VersionTLS13Draft18 is draft-ietf-tls-tls13-18, the most commonly
	// advertised "official" draft in the paper's data (13.4%).
	VersionTLS13Draft18 Version = 0x7f12
	// VersionTLS13Draft28 is the final draft referenced by the paper.
	VersionTLS13Draft28 Version = 0x7f1c
	// VersionTLS13Google is 0x7e02, the experimental Google variant that
	// accounted for 82.3% of supported_versions advertisements in the study.
	VersionTLS13Google Version = 0x7e02
)

// String returns the conventional name for v ("TLSv12", "SSLv3", ...).
func (v Version) String() string {
	switch v {
	case VersionSSL2:
		return "SSLv2"
	case VersionSSL3:
		return "SSLv3"
	case VersionTLS10:
		return "TLSv10"
	case VersionTLS11:
		return "TLSv11"
	case VersionTLS12:
		return "TLSv12"
	case VersionTLS13:
		return "TLSv13"
	case VersionTLS13Draft18:
		return "TLSv13-draft18"
	case VersionTLS13Draft28:
		return "TLSv13-draft28"
	case VersionTLS13Google:
		return "TLSv13-google"
	}
	return fmt.Sprintf("Version(%#04x)", uint16(v))
}

// Known reports whether v is one of the registered protocol versions.
func (v Version) Known() bool {
	switch v {
	case VersionSSL2, VersionSSL3, VersionTLS10, VersionTLS11, VersionTLS12,
		VersionTLS13, VersionTLS13Draft18, VersionTLS13Draft28, VersionTLS13Google:
		return true
	}
	return false
}

// IsTLS13Variant reports whether v denotes TLS 1.3 proper or one of its
// draft/experimental code points.
func (v Version) IsTLS13Variant() bool {
	if v == VersionTLS13 || v == VersionTLS13Google {
		return true
	}
	return v >= 0x7f00 && v <= 0x7fff // draft versions
}

// Canonical collapses TLS 1.3 draft and experimental values onto
// VersionTLS13 and returns every other version unchanged. Analysis code uses
// it so that draft traffic counts as TLS 1.3.
func (v Version) Canonical() Version {
	if v.IsTLS13Variant() {
		return VersionTLS13
	}
	return v
}

// ReleaseDate is the date a protocol version was published (Table 1 of the
// paper). Year and month only; day is pinned to 1.
type ReleaseDate struct {
	Year  int
	Month int
}

// VersionReleases reproduces Table 1: the release dates of all SSL/TLS
// versions, in chronological order.
func VersionReleases() []struct {
	Version Version
	Name    string
	Date    ReleaseDate
} {
	return []struct {
		Version Version
		Name    string
		Date    ReleaseDate
	}{
		{VersionSSL2, "SSL 2", ReleaseDate{1995, 2}},
		{VersionSSL3, "SSL 3", ReleaseDate{1996, 11}},
		{VersionTLS10, "TLS 1.0", ReleaseDate{1999, 1}},
		{VersionTLS11, "TLS 1.1", ReleaseDate{2006, 4}},
		{VersionTLS12, "TLS 1.2", ReleaseDate{2008, 8}},
		{VersionTLS13, "TLS 1.3", ReleaseDate{2018, 8}},
	}
}

// AllVersions lists the negotiable record-layer versions in ascending order.
func AllVersions() []Version {
	return []Version{VersionSSL2, VersionSSL3, VersionTLS10, VersionTLS11, VersionTLS12, VersionTLS13}
}
