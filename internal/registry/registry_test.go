package registry

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSuiteTableNoDuplicates(t *testing.T) {
	seen := make(map[uint16]string)
	names := make(map[string]uint16)
	for _, s := range suiteTable {
		if prev, ok := seen[s.ID]; ok {
			t.Errorf("duplicate suite id %#04x: %s and %s", s.ID, prev, s.Name)
		}
		if prev, ok := names[s.Name]; ok {
			t.Errorf("duplicate suite name %s: %#04x and %#04x", s.Name, prev, s.ID)
		}
		seen[s.ID] = s.Name
		names[s.Name] = s.ID
	}
}

func TestSuiteLookupRoundTrip(t *testing.T) {
	for _, s := range AllSuites() {
		got, ok := SuiteByID(s.ID)
		if !ok {
			t.Fatalf("SuiteByID(%#04x) not found", s.ID)
		}
		if got.Name != s.Name {
			t.Fatalf("SuiteByID(%#04x) = %s, want %s", s.ID, got.Name, s.Name)
		}
		id, ok := SuiteIDByName(s.Name)
		if !ok || id != s.ID {
			t.Fatalf("SuiteIDByName(%s) = %#04x,%v want %#04x", s.Name, id, ok, s.ID)
		}
	}
}

func TestSuiteNameConsistency(t *testing.T) {
	// Every structural property must be consistent with the IANA name. This
	// guards the whole analysis layer: a suite classified as RC4 must carry
	// RC4 in its name, exports must say EXPORT, and so on.
	for _, s := range AllSuites() {
		if s.ID == 0x00FF || s.ID == 0x5600 || s.ID == 0x0000 {
			continue // signalling suites and NULL_WITH_NULL_NULL
		}
		name := s.Name
		if s.IsRC4() != strings.Contains(name, "RC4") {
			t.Errorf("%s: IsRC4=%v mismatches name", name, s.IsRC4())
		}
		if s.Is3DES() != strings.Contains(name, "3DES") {
			t.Errorf("%s: Is3DES=%v mismatches name", name, s.Is3DES())
		}
		if s.IsExport() != strings.Contains(name, "EXPORT") {
			t.Errorf("%s: IsExport=%v mismatches name", name, s.IsExport())
		}
		if s.IsAnon() != strings.Contains(name, "anon") {
			t.Errorf("%s: IsAnon=%v mismatches name", name, s.IsAnon())
		}
		wantGCM := strings.Contains(name, "_GCM")
		if (s.Mode == ModeGCM) != wantGCM {
			t.Errorf("%s: GCM mode mismatch", name)
		}
		wantChaCha := strings.Contains(name, "CHACHA20")
		if (s.Cipher == CipherChaCha20) != wantChaCha {
			t.Errorf("%s: ChaCha20 mismatch", name)
		}
		// NULL encryption: name contains WITH_NULL (GOST NULL suites differ).
		wantNull := strings.Contains(name, "WITH_NULL") || strings.Contains(name, "_NULL_GOSTR")
		if s.IsNULLCipher() != wantNull {
			t.Errorf("%s: IsNULLCipher=%v mismatches name", name, s.IsNULLCipher())
		}
	}
}

func TestForwardSecrecyClassification(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", true},
		{"TLS_DHE_RSA_WITH_AES_128_CBC_SHA", true},
		{"TLS_RSA_WITH_AES_128_GCM_SHA256", false},
		{"TLS_DH_RSA_WITH_AES_128_CBC_SHA", false},
		{"TLS_ECDH_RSA_WITH_AES_128_CBC_SHA", false},
		{"TLS_AES_128_GCM_SHA256", true}, // TLS 1.3 always FS
	}
	for _, c := range cases {
		id, ok := SuiteIDByName(c.name)
		if !ok {
			t.Fatalf("unknown suite %s", c.name)
		}
		if got := MustSuite(id).ForwardSecret(); got != c.want {
			t.Errorf("%s: ForwardSecret=%v want %v", c.name, got, c.want)
		}
	}
}

func TestSweet32Vulnerable(t *testing.T) {
	des, _ := SuiteIDByName("TLS_RSA_WITH_DES_CBC_SHA")
	tdes, _ := SuiteIDByName("TLS_RSA_WITH_3DES_EDE_CBC_SHA")
	aes, _ := SuiteIDByName("TLS_RSA_WITH_AES_128_CBC_SHA")
	rc4, _ := SuiteIDByName("TLS_RSA_WITH_RC4_128_SHA")
	if !MustSuite(des).Sweet32Vulnerable() || !MustSuite(tdes).Sweet32Vulnerable() {
		t.Error("DES/3DES CBC should be Sweet32-vulnerable")
	}
	if MustSuite(aes).Sweet32Vulnerable() {
		t.Error("AES-128-CBC is not Sweet32-vulnerable")
	}
	if MustSuite(rc4).Sweet32Vulnerable() {
		t.Error("RC4 (stream) is not Sweet32-vulnerable")
	}
}

func TestTrafficClass(t *testing.T) {
	cases := map[string]string{
		"TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256":       "AEAD",
		"TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256": "AEAD",
		"TLS_RSA_WITH_AES_128_CBC_SHA":                "CBC",
		"TLS_RSA_WITH_RC4_128_SHA":                    "RC4",
		"TLS_RSA_WITH_NULL_SHA":                       "other",
	}
	for name, want := range cases {
		id, _ := SuiteIDByName(name)
		if got := MustSuite(id).TrafficClass(); got != want {
			t.Errorf("%s: class=%s want %s", name, got, want)
		}
	}
}

func TestVersionReleasesTable1(t *testing.T) {
	rel := VersionReleases()
	if len(rel) != 6 {
		t.Fatalf("Table 1 has 6 rows, got %d", len(rel))
	}
	// Chronological and correctly dated per Table 1.
	want := []struct {
		name        string
		year, month int
	}{
		{"SSL 2", 1995, 2}, {"SSL 3", 1996, 11}, {"TLS 1.0", 1999, 1},
		{"TLS 1.1", 2006, 4}, {"TLS 1.2", 2008, 8}, {"TLS 1.3", 2018, 8},
	}
	for i, w := range want {
		r := rel[i]
		if r.Name != w.name || r.Date.Year != w.year || r.Date.Month != w.month {
			t.Errorf("row %d: got %s %d-%d, want %s %d-%d", i, r.Name, r.Date.Year, r.Date.Month, w.name, w.year, w.month)
		}
	}
}

func TestVersionCanonical(t *testing.T) {
	for _, v := range []Version{VersionTLS13, VersionTLS13Draft18, VersionTLS13Draft28, VersionTLS13Google} {
		if v.Canonical() != VersionTLS13 {
			t.Errorf("%v.Canonical() != TLS13", v)
		}
	}
	for _, v := range []Version{VersionSSL2, VersionSSL3, VersionTLS10, VersionTLS11, VersionTLS12} {
		if v.Canonical() != v {
			t.Errorf("%v.Canonical() changed a pre-1.3 version", v)
		}
	}
}

func TestGREASEValues(t *testing.T) {
	vals := GREASEValues()
	if len(vals) != 16 {
		t.Fatalf("want 16 GREASE values, got %d", len(vals))
	}
	for _, v := range vals {
		if !IsGREASE(v) {
			t.Errorf("%#04x should be GREASE", v)
		}
	}
	for _, v := range []uint16{0x0a0b, 0x0b0a, 0x1301, 0xc02f, 0x0000, 0xffff} {
		if IsGREASE(v) {
			t.Errorf("%#04x should not be GREASE", v)
		}
	}
}

func TestStripGREASEProperty(t *testing.T) {
	// Property: stripping is idempotent, preserves order of non-GREASE values
	// and removes every GREASE value.
	f := func(vals []uint16) bool {
		out := StripGREASE16(vals)
		for _, v := range out {
			if IsGREASE(v) {
				return false
			}
		}
		// Idempotence.
		out2 := StripGREASE16(out)
		if len(out2) != len(out) {
			return false
		}
		// Order preservation: out must be the subsequence of vals with
		// GREASE removed.
		j := 0
		for _, v := range vals {
			if IsGREASE(v) {
				continue
			}
			if j >= len(out) || out[j] != v {
				return false
			}
			j++
		}
		return j == len(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripGREASENoCopyFastPath(t *testing.T) {
	in := []uint16{1, 2, 3}
	out := StripGREASE16(in)
	if &out[0] != &in[0] {
		t.Error("StripGREASE16 should return input unchanged when no GREASE present")
	}
}

func TestClassify(t *testing.T) {
	ids := []uint16{
		0xC02F,         // ECDHE-RSA-AES128-GCM (AEAD)
		0xC013, 0x002F, // CBC
		0x0005,         // RC4
		0x00FF, 0x5600, // SCSVs: ignored
		0xAAAA, // GREASE-ish unknown: ignored
	}
	got := Classify(ids)
	if got["AEAD"] != 1 || got["CBC"] != 2 || got["RC4"] != 1 {
		t.Errorf("Classify = %v", got)
	}
}

func TestFirstIndexWhere(t *testing.T) {
	ids := []uint16{0xC02F, 0xC013, 0x0005}
	if i := FirstIndexWhere(ids, Suite.IsCBC); i != 1 {
		t.Errorf("first CBC index = %d, want 1", i)
	}
	if i := FirstIndexWhere(ids, Suite.IsRC4); i != 2 {
		t.Errorf("first RC4 index = %d, want 2", i)
	}
	if i := FirstIndexWhere(ids, Suite.Is3DES); i != -1 {
		t.Errorf("first 3DES index = %d, want -1", i)
	}
}

func TestExtensionNames(t *testing.T) {
	if ExtHeartbeat.String() != "heartbeat" {
		t.Errorf("heartbeat name: %s", ExtHeartbeat)
	}
	if ExtSupportedVersions != 43 {
		t.Errorf("supported_versions must be 43")
	}
	if !ExtRenegotiationInfo.Known() {
		t.Error("renegotiation_info should be known")
	}
	if ExtensionID(0x9999).Known() {
		t.Error("0x9999 should be unknown")
	}
	exts := AllExtensions()
	for i := 1; i < len(exts); i++ {
		if exts[i-1] >= exts[i] {
			t.Fatal("AllExtensions not strictly sorted")
		}
	}
}

func TestCurveNames(t *testing.T) {
	if CurveSecp256r1.String() != "secp256r1" || CurveX25519.String() != "x25519" {
		t.Error("curve naming broken")
	}
	if CurveID(999).Known() {
		t.Error("curve 999 should be unknown")
	}
}

func TestSuitesWhere(t *testing.T) {
	exports := SuitesWhere(Suite.IsExport)
	if len(exports) == 0 {
		t.Fatal("no export suites found")
	}
	for _, id := range exports {
		if !MustSuite(id).IsExport() {
			t.Errorf("%#04x not export", id)
		}
	}
	// The canonical FREAK suite must be present.
	found := false
	for _, id := range exports {
		if id == 0x0003 {
			found = true
		}
	}
	if !found {
		t.Error("TLS_RSA_EXPORT_WITH_RC4_40_MD5 (0x0003) missing from exports")
	}
}

func TestStringerFallbacks(t *testing.T) {
	if s := Version(0x1234).String(); s == "" {
		t.Error("empty version string")
	}
	if s := (Suite{ID: 0xBEEF}).String(); s != "UNKNOWN_beef" {
		t.Errorf("unknown suite string = %s", s)
	}
	if KeyExchange(200).String() == "" || AuthAlgorithm(200).String() == "" ||
		CipherAlgorithm(200).String() == "" || CipherMode(200).String() == "" ||
		MACAlgorithm(200).String() == "" || ECPointFormat(200).String() == "" {
		t.Error("stringer fallback returned empty")
	}
}

func TestAllStringersTotal(t *testing.T) {
	// Exercise every String() arm across the registry: no stringer may
	// return an empty string for any registered value.
	for _, s := range AllSuites() {
		for _, str := range []string{
			s.String(), s.Kex.String(), s.Auth.String(), s.Cipher.String(),
			s.Mode.String(), s.MAC.String(),
		} {
			if str == "" {
				t.Fatalf("empty stringer for suite %04x", s.ID)
			}
		}
		_ = s.Cipher.BlockSizeBits()
		_ = s.TrafficClass()
	}
	for _, e := range AllExtensions() {
		if e.String() == "" {
			t.Fatalf("empty extension name for %d", e)
		}
	}
	for _, v := range AllVersions() {
		if v.String() == "" || !v.Known() {
			t.Fatalf("version %d", v)
		}
	}
	for c := CurveID(1); c <= CurveID(30); c++ {
		_ = c.String()
	}
	for _, v := range []Version{VersionTLS13Draft18, VersionTLS13Draft28, VersionTLS13Google} {
		if !v.Known() || !v.IsTLS13Variant() {
			t.Errorf("%v should be a known 1.3 variant", v)
		}
	}
}

func TestMustSuitePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSuite should panic on unknown id")
		}
	}()
	MustSuite(0xBEEF)
}
