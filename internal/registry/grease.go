package registry

// GREASE (Generate Random Extensions And Sustain Extensibility,
// draft-ietf-tls-grease) reserves sixteen code points of the form 0xNANA that
// Chrome-lineage clients inject into cipher-suite lists, extension lists,
// named-group lists and version lists to keep servers tolerant of unknown
// values. §4 of the paper strips GREASE values before fingerprinting; the
// functions here implement that.

// IsGREASE reports whether v is one of the sixteen reserved GREASE code
// points (0x0A0A, 0x1A1A, ... 0xFAFA).
func IsGREASE(v uint16) bool {
	return v&0x0f0f == 0x0a0a && byte(v>>8) == byte(v)
}

// GREASEValues returns all sixteen GREASE code points in ascending order.
func GREASEValues() []uint16 {
	out := make([]uint16, 0, 16)
	for i := 0; i < 16; i++ {
		hi := uint16(i)<<4 | 0x0a
		out = append(out, hi<<8|hi)
	}
	return out
}

// StripGREASE16 returns values with all GREASE code points removed. The
// input slice is never modified; when no GREASE value is present the input
// is returned as-is (no allocation).
func StripGREASE16(values []uint16) []uint16 {
	n := 0
	for _, v := range values {
		if IsGREASE(v) {
			n++
		}
	}
	if n == 0 {
		return values
	}
	out := make([]uint16, 0, len(values)-n)
	for _, v := range values {
		if !IsGREASE(v) {
			out = append(out, v)
		}
	}
	return out
}

// StripGREASEExt filters GREASE values from an extension-ID list with the
// same no-copy fast path as StripGREASE16.
func StripGREASEExt(values []ExtensionID) []ExtensionID {
	n := 0
	for _, v := range values {
		if IsGREASE(uint16(v)) {
			n++
		}
	}
	if n == 0 {
		return values
	}
	out := make([]ExtensionID, 0, len(values)-n)
	for _, v := range values {
		if !IsGREASE(uint16(v)) {
			out = append(out, v)
		}
	}
	return out
}

// StripGREASECurves filters GREASE values from a curve list with the same
// no-copy fast path as StripGREASE16.
func StripGREASECurves(values []CurveID) []CurveID {
	n := 0
	for _, v := range values {
		if IsGREASE(uint16(v)) {
			n++
		}
	}
	if n == 0 {
		return values
	}
	out := make([]CurveID, 0, len(values)-n)
	for _, v := range values {
		if !IsGREASE(uint16(v)) {
			out = append(out, v)
		}
	}
	return out
}
