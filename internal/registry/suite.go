package registry

import "fmt"

// KeyExchange identifies the key-establishment mechanism of a cipher suite.
type KeyExchange uint8

// Key exchange algorithms seen across the SSL3–TLS 1.2 suite space, plus the
// pseudo-value KexTLS13 for TLS 1.3 suites (which negotiate key exchange
// separately from the cipher suite).
const (
	KexNULL KeyExchange = iota
	KexRSA
	KexDH    // static (fixed) Diffie-Hellman
	KexDHE   // ephemeral Diffie-Hellman (forward secret)
	KexECDH  // static elliptic-curve Diffie-Hellman
	KexECDHE // ephemeral elliptic-curve Diffie-Hellman (forward secret)
	KexPSK
	KexDHEPSK
	KexECDHEPSK
	KexRSAPSK
	KexSRP
	KexKRB5
	KexGOST
	KexTLS13
)

// String returns the conventional short name of the key exchange.
func (k KeyExchange) String() string {
	switch k {
	case KexNULL:
		return "NULL"
	case KexRSA:
		return "RSA"
	case KexDH:
		return "DH"
	case KexDHE:
		return "DHE"
	case KexECDH:
		return "ECDH"
	case KexECDHE:
		return "ECDHE"
	case KexPSK:
		return "PSK"
	case KexDHEPSK:
		return "DHE-PSK"
	case KexECDHEPSK:
		return "ECDHE-PSK"
	case KexRSAPSK:
		return "RSA-PSK"
	case KexSRP:
		return "SRP"
	case KexKRB5:
		return "KRB5"
	case KexGOST:
		return "GOST"
	case KexTLS13:
		return "TLS13"
	}
	return fmt.Sprintf("KeyExchange(%d)", uint8(k))
}

// ForwardSecret reports whether the key exchange provides forward secrecy
// (§6.3.1): only the ephemeral (EC)DHE family qualifies. TLS 1.3 suites are
// always forward secret.
func (k KeyExchange) ForwardSecret() bool {
	switch k {
	case KexDHE, KexECDHE, KexDHEPSK, KexECDHEPSK, KexTLS13:
		return true
	}
	return false
}

// AuthAlgorithm identifies the server-authentication mechanism.
type AuthAlgorithm uint8

// Authentication algorithms. AuthAnon marks the anonymous suites discussed
// in §6.2 (key establishment unauthenticated, trivially MITM-able).
const (
	AuthNULL AuthAlgorithm = iota
	AuthRSA
	AuthDSS
	AuthECDSA
	AuthAnon
	AuthPSK
	AuthKRB5
	AuthGOST
	AuthTLS13 // authentication negotiated outside the suite
)

// String returns the conventional short name of the authentication algorithm.
func (a AuthAlgorithm) String() string {
	switch a {
	case AuthNULL:
		return "NULL"
	case AuthRSA:
		return "RSA"
	case AuthDSS:
		return "DSS"
	case AuthECDSA:
		return "ECDSA"
	case AuthAnon:
		return "anon"
	case AuthPSK:
		return "PSK"
	case AuthKRB5:
		return "KRB5"
	case AuthGOST:
		return "GOST"
	case AuthTLS13:
		return "TLS13"
	}
	return fmt.Sprintf("AuthAlgorithm(%d)", uint8(a))
}

// CipherAlgorithm identifies the bulk encryption primitive.
type CipherAlgorithm uint8

// Bulk ciphers across the registry. CipherNULL means data travels in the
// clear (§6.1).
const (
	CipherNULL CipherAlgorithm = iota
	CipherRC4
	CipherRC2
	CipherDES
	CipherDES40
	Cipher3DES
	CipherIDEA
	CipherSEED
	CipherAES128
	CipherAES256
	CipherCamellia128
	CipherCamellia256
	CipherARIA128
	CipherARIA256
	CipherChaCha20
	CipherGOST28147
)

// String returns the conventional short name of the bulk cipher.
func (c CipherAlgorithm) String() string {
	switch c {
	case CipherNULL:
		return "NULL"
	case CipherRC4:
		return "RC4"
	case CipherRC2:
		return "RC2"
	case CipherDES:
		return "DES"
	case CipherDES40:
		return "DES40"
	case Cipher3DES:
		return "3DES"
	case CipherIDEA:
		return "IDEA"
	case CipherSEED:
		return "SEED"
	case CipherAES128:
		return "AES128"
	case CipherAES256:
		return "AES256"
	case CipherCamellia128:
		return "Camellia128"
	case CipherCamellia256:
		return "Camellia256"
	case CipherARIA128:
		return "ARIA128"
	case CipherARIA256:
		return "ARIA256"
	case CipherChaCha20:
		return "ChaCha20"
	case CipherGOST28147:
		return "GOST28147"
	}
	return fmt.Sprintf("CipherAlgorithm(%d)", uint8(c))
}

// BlockSizeBits returns the block size of the cipher in bits, or 0 for
// stream ciphers and NULL. Sweet32 (§5.6) targets 64-bit block ciphers.
func (c CipherAlgorithm) BlockSizeBits() int {
	switch c {
	case CipherRC2, CipherDES, CipherDES40, Cipher3DES, CipherIDEA, CipherGOST28147:
		return 64
	case CipherSEED, CipherAES128, CipherAES256, CipherCamellia128, CipherCamellia256, CipherARIA128, CipherARIA256:
		return 128
	}
	return 0
}

// CipherMode identifies the mode of operation of the bulk cipher.
type CipherMode uint8

// Modes of operation. The three AEAD modes (GCM, CCM/CCM8, Poly1305)
// correspond to the paper's "AEAD" traffic class; ModeCBC to "CBC"; ModeStream
// with CipherRC4 to "RC4".
const (
	ModeNone CipherMode = iota // NULL cipher: no encryption at all
	ModeStream
	ModeCBC
	ModeGCM
	ModeCCM
	ModeCCM8
	ModePoly1305
)

// String returns the conventional name of the mode.
func (m CipherMode) String() string {
	switch m {
	case ModeNone:
		return "None"
	case ModeStream:
		return "Stream"
	case ModeCBC:
		return "CBC"
	case ModeGCM:
		return "GCM"
	case ModeCCM:
		return "CCM"
	case ModeCCM8:
		return "CCM8"
	case ModePoly1305:
		return "Poly1305"
	}
	return fmt.Sprintf("CipherMode(%d)", uint8(m))
}

// AEAD reports whether the mode is an authenticated-encryption mode.
func (m CipherMode) AEAD() bool {
	switch m {
	case ModeGCM, ModeCCM, ModeCCM8, ModePoly1305:
		return true
	}
	return false
}

// MACAlgorithm identifies the record-protection MAC of non-AEAD suites.
type MACAlgorithm uint8

// MAC algorithms. MACAEAD is used for AEAD suites where integrity comes from
// the AEAD transform itself; the SHA256/SHA384 values on AEAD suites denote
// the PRF hash.
const (
	MACNULL MACAlgorithm = iota
	MACMD5
	MACSHA1
	MACSHA256
	MACSHA384
	MACAEAD
	MACGOST
)

// String returns the conventional name of the MAC algorithm.
func (m MACAlgorithm) String() string {
	switch m {
	case MACNULL:
		return "NULL"
	case MACMD5:
		return "MD5"
	case MACSHA1:
		return "SHA"
	case MACSHA256:
		return "SHA256"
	case MACSHA384:
		return "SHA384"
	case MACAEAD:
		return "AEAD"
	case MACGOST:
		return "GOST"
	}
	return fmt.Sprintf("MACAlgorithm(%d)", uint8(m))
}

// Suite describes one registered cipher suite: its IANA code point, name and
// the algorithm decomposition the study's analyses classify on.
type Suite struct {
	ID     uint16
	Name   string
	Kex    KeyExchange
	Auth   AuthAlgorithm
	Cipher CipherAlgorithm
	Mode   CipherMode
	MAC    MACAlgorithm
	// Export marks 40/56-bit export-grade suites (§5.5, FREAK/Logjam).
	Export bool
	// MinVersion is the lowest protocol version the suite may be used with.
	MinVersion Version
}

// String returns the suite name, or a hex rendering for unknown suites.
func (s Suite) String() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("UNKNOWN_%04x", s.ID)
}

// IsAEAD reports whether the suite uses an AEAD mode.
func (s Suite) IsAEAD() bool { return s.Mode.AEAD() }

// IsCBC reports whether the suite uses CBC mode.
func (s Suite) IsCBC() bool { return s.Mode == ModeCBC }

// IsRC4 reports whether the suite encrypts with RC4.
func (s Suite) IsRC4() bool { return s.Cipher == CipherRC4 }

// IsDES reports whether the suite encrypts with single DES (incl. DES40).
func (s Suite) IsDES() bool { return s.Cipher == CipherDES || s.Cipher == CipherDES40 }

// Is3DES reports whether the suite encrypts with Triple-DES.
func (s Suite) Is3DES() bool { return s.Cipher == Cipher3DES }

// IsNULLCipher reports whether the suite provides no confidentiality (§6.1).
func (s Suite) IsNULLCipher() bool { return s.Cipher == CipherNULL }

// IsAnon reports whether key establishment is unauthenticated (§6.2).
func (s Suite) IsAnon() bool { return s.Auth == AuthAnon }

// IsExport reports whether the suite is export-grade (§5.5).
func (s Suite) IsExport() bool { return s.Export }

// ForwardSecret reports whether the suite's key exchange provides forward
// secrecy (§6.3.1).
func (s Suite) ForwardSecret() bool { return s.Kex.ForwardSecret() }

// IsTLS13 reports whether the suite is a TLS 1.3 suite (0x13xx space).
func (s Suite) IsTLS13() bool { return s.Kex == KexTLS13 }

// Sweet32Vulnerable reports whether the suite uses a 64-bit block cipher in
// CBC mode, the precondition for the Sweet32 birthday attack (§5.6).
func (s Suite) Sweet32Vulnerable() bool {
	return s.Mode == ModeCBC && s.Cipher.BlockSizeBits() == 64
}

// TrafficClass buckets a suite the way Figures 2 and 3 of the paper do:
// "AEAD", "CBC", "RC4", or "other" (NULL/stream oddities).
func (s Suite) TrafficClass() string {
	switch {
	case s.IsAEAD():
		return "AEAD"
	case s.IsCBC():
		return "CBC"
	case s.IsRC4():
		return "RC4"
	default:
		return "other"
	}
}
