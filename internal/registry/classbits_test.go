package registry

import (
	"math/rand"
	"testing"
)

// classPredicates maps each class bit to the closure predicate it replaces.
var classPredicates = []struct {
	name string
	bit  ClassBits
	pred func(Suite) bool
}{
	{"RC4", ClassRC4, Suite.IsRC4},
	{"DES", ClassDES, Suite.IsDES},
	{"3DES", Class3DES, Suite.Is3DES},
	{"AEAD", ClassAEAD, Suite.IsAEAD},
	{"CBC", ClassCBC, Suite.IsCBC},
	{"Export", ClassExport, Suite.IsExport},
	{"Anon", ClassAnon, Suite.IsAnon},
	{"NULL", ClassNULL, Suite.IsNULLCipher},
	{"GCM128", ClassGCM128, func(s Suite) bool { return s.Mode == ModeGCM && s.Cipher == CipherAES128 }},
	{"GCM256", ClassGCM256, func(s Suite) bool { return s.Mode == ModeGCM && s.Cipher == CipherAES256 }},
	{"ChaCha", ClassChaCha, func(s Suite) bool { return s.Cipher == CipherChaCha20 }},
	{"CCM", ClassCCM, func(s Suite) bool { return s.Mode == ModeCCM || s.Mode == ModeCCM8 }},
}

// Every registered suite's bitmask must agree with the predicates bit by bit.
func TestSuiteClassBitsMatchPredicates(t *testing.T) {
	for _, s := range AllSuites() {
		got := SuiteClassBits(s.ID)
		for _, cp := range classPredicates {
			if got.Has(cp.bit) != cp.pred(s) {
				t.Errorf("%s: class %s bit = %v, predicate = %v",
					s.Name, cp.name, got.Has(cp.bit), cp.pred(s))
			}
		}
	}
}

func TestSuiteClassBitsUnknownAndGREASE(t *testing.T) {
	if got := SuiteClassBits(0x0a0a); got != 0 {
		t.Errorf("GREASE code point has class bits %b", got)
	}
	if got := SuiteClassBits(0xfffe); got != 0 {
		t.Errorf("unregistered code point has class bits %b", got)
	}
}

// randomSuiteList mixes registered suites, GREASE values and unknown code
// points, the way real advertised lists do.
func randomSuiteList(rnd *rand.Rand, all []Suite) []uint16 {
	n := rnd.Intn(40)
	out := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		switch rnd.Intn(10) {
		case 0:
			out = append(out, GREASEValues()[rnd.Intn(16)])
		case 1:
			out = append(out, uint16(0xf000+rnd.Intn(0x100))) // unregistered
		default:
			out = append(out, all[rnd.Intn(len(all))].ID)
		}
	}
	return out
}

// ScanSuites over random lists must agree with ListHas and FirstIndexWhere
// for every class.
func TestScanSuitesEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	all := AllSuites()
	for trial := 0; trial < 500; trial++ {
		ids := randomSuiteList(rnd, all)
		scan := ScanSuites(ids)
		for _, cp := range classPredicates {
			if got, want := scan.Bits.Has(cp.bit), ListHas(ids, cp.pred); got != want {
				t.Fatalf("trial %d class %s: Bits.Has = %v, ListHas = %v (ids %04x)",
					trial, cp.name, got, want, ids)
			}
			if got, want := scan.FirstIndex(cp.bit), FirstIndexWhere(ids, cp.pred); got != want {
				t.Fatalf("trial %d class %s: FirstIndex = %d, FirstIndexWhere = %d (ids %04x)",
					trial, cp.name, got, want, ids)
			}
		}
	}
}

// Allocation-regression guards for the aggregation hot path.

func TestStripGREASE16FastPathAllocs(t *testing.T) {
	list := []uint16{0x1301, 0xc02f, 0x009c, 0x002f, 0x000a}
	if got := testing.AllocsPerRun(200, func() {
		_ = StripGREASE16(list)
	}); got != 0 {
		t.Errorf("StripGREASE16 without GREASE: %v allocs/run, want 0", got)
	}
}

func TestScanSuitesAllocs(t *testing.T) {
	list := []uint16{0x1a1a, 0x1301, 0xc02f, 0x009c, 0x002f, 0x000a, 0xcca8}
	ScanSuites(list) // build the table outside the measured runs
	if got := testing.AllocsPerRun(200, func() {
		_ = ScanSuites(list)
	}); got > 1 {
		t.Errorf("ScanSuites: %v allocs/run, want ≤ 1", got)
	}
}
