package registry

import "fmt"

// CurveID is a named group from the IANA "TLS Supported Groups" registry
// (historically "EC Named Curve"). The paper reports 35 registered values as
// of May 2018; the curves that actually occur in its data (§6.3.3) are all
// present here.
type CurveID uint16

// Named curves / groups.
const (
	CurveSect163k1       CurveID = 1
	CurveSect163r1       CurveID = 2
	CurveSect163r2       CurveID = 3
	CurveSect193r1       CurveID = 4
	CurveSect193r2       CurveID = 5
	CurveSect233k1       CurveID = 6
	CurveSect233r1       CurveID = 7
	CurveSect239k1       CurveID = 8
	CurveSect283k1       CurveID = 9
	CurveSect283r1       CurveID = 10
	CurveSect409k1       CurveID = 11
	CurveSect409r1       CurveID = 12
	CurveSect571k1       CurveID = 13
	CurveSect571r1       CurveID = 14
	CurveSecp160k1       CurveID = 15
	CurveSecp160r1       CurveID = 16
	CurveSecp160r2       CurveID = 17
	CurveSecp192k1       CurveID = 18
	CurveSecp192r1       CurveID = 19
	CurveSecp224k1       CurveID = 20
	CurveSecp224r1       CurveID = 21
	CurveSecp256k1       CurveID = 22
	CurveSecp256r1       CurveID = 23 // P-256, 84.4% of connections in the study
	CurveSecp384r1       CurveID = 24 // P-384, 8.6%
	CurveSecp521r1       CurveID = 25 // P-521, 0.1%
	CurveBrainpoolP256r1 CurveID = 26
	CurveBrainpoolP384r1 CurveID = 27
	CurveBrainpoolP512r1 CurveID = 28
	CurveX25519          CurveID = 29 // 6.7% overall, 22.2% by Feb 2018
	CurveX448            CurveID = 30
	CurveFFDHE2048       CurveID = 256
	CurveFFDHE3072       CurveID = 257
	CurveFFDHE4096       CurveID = 258
	CurveFFDHE6144       CurveID = 259
	CurveFFDHE8192       CurveID = 260
)

var curveNames = map[CurveID]string{
	CurveSect163k1: "sect163k1", CurveSect163r1: "sect163r1", CurveSect163r2: "sect163r2",
	CurveSect193r1: "sect193r1", CurveSect193r2: "sect193r2", CurveSect233k1: "sect233k1",
	CurveSect233r1: "sect233r1", CurveSect239k1: "sect239k1", CurveSect283k1: "sect283k1",
	CurveSect283r1: "sect283r1", CurveSect409k1: "sect409k1", CurveSect409r1: "sect409r1",
	CurveSect571k1: "sect571k1", CurveSect571r1: "sect571r1",
	CurveSecp160k1: "secp160k1", CurveSecp160r1: "secp160r1", CurveSecp160r2: "secp160r2",
	CurveSecp192k1: "secp192k1", CurveSecp192r1: "secp192r1", CurveSecp224k1: "secp224k1",
	CurveSecp224r1: "secp224r1", CurveSecp256k1: "secp256k1", CurveSecp256r1: "secp256r1",
	CurveSecp384r1: "secp384r1", CurveSecp521r1: "secp521r1",
	CurveBrainpoolP256r1: "brainpoolP256r1", CurveBrainpoolP384r1: "brainpoolP384r1",
	CurveBrainpoolP512r1: "brainpoolP512r1",
	CurveX25519:          "x25519", CurveX448: "x448",
	CurveFFDHE2048: "ffdhe2048", CurveFFDHE3072: "ffdhe3072", CurveFFDHE4096: "ffdhe4096",
	CurveFFDHE6144: "ffdhe6144", CurveFFDHE8192: "ffdhe8192",
}

// String returns the IANA name of the curve, or a hex rendering for
// unregistered values.
func (c CurveID) String() string {
	if n, ok := curveNames[c]; ok {
		return n
	}
	return fmt.Sprintf("curve(%#04x)", uint16(c))
}

// Known reports whether c is a registered group.
func (c CurveID) Known() bool {
	_, ok := curveNames[c]
	return ok
}

// AllCurves returns the registered named groups in ascending order.
func AllCurves() []CurveID {
	out := make([]CurveID, 0, len(curveNames))
	for c := range curveNames {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// ECPointFormat is a value from the "EC Point Formats" registry.
type ECPointFormat uint8

// EC point formats.
const (
	PointFormatUncompressed            ECPointFormat = 0
	PointFormatANSIX962CompressedPrime ECPointFormat = 1
	PointFormatANSIX962CompressedChar2 ECPointFormat = 2
)

// String returns the conventional name of the point format.
func (p ECPointFormat) String() string {
	switch p {
	case PointFormatUncompressed:
		return "uncompressed"
	case PointFormatANSIX962CompressedPrime:
		return "ansiX962_compressed_prime"
	case PointFormatANSIX962CompressedChar2:
		return "ansiX962_compressed_char2"
	}
	return fmt.Sprintf("pointformat(%d)", uint8(p))
}
